//! Trace capture and replay: emulate once, time many.
//!
//! Every timing cell that shares an *emulation key* — the workload
//! instance plus the architectural configuration `(PBS config, emulator
//! config)` — executes the same dynamic instruction stream: the
//! predictor, the core width, the Figure 9 filter switch and branch
//! tracing live entirely in the timing model and feed nothing back into
//! the emulator. This module makes that stream a first-class artifact:
//!
//! * [`TraceStream`] — the capture half of the fused engine, split out:
//!   drains the emulator's [`StepRecord`] stream (branch outcomes and
//!   prob-branch resolutions ride inside the records) into
//!   [`TraceChunk`]s of packed 8-byte [`ReplayRec`]s, pre-simulating
//!   the memory hierarchy — whose evolution also depends only on the
//!   pc/address stream — into per-record latencies along the way;
//! * [`DynTrace`] — a materialized, chunked trace captured once per
//!   emulation key and shared (`Arc<DynTrace>`) across every timing
//!   cell of a sweep;
//! * [`ReplayConsumer`] — the consume half: an
//!   [`OooTimingModel`] + statically dispatched predictor pair that
//!   drains chunks through the same cycle-accounting core as the live
//!   engines ([`OooTimingModel::consume_core`]), with the whole chunk
//!   loop monomorphized per predictor type via
//!   [`PredictorVisitor`](probranch_predictor::PredictorVisitor).
//!
//! Two replay modes sit on top (see `sim.rs`):
//! [`simulate_replay`](crate::simulate_replay) re-times a materialized
//! [`DynTrace`], and [`simulate_convoy`](crate::simulate_convoy)
//! streams each freshly captured chunk through *k* consumers in
//! lockstep — one chunk buffer of bounded size, hot in cache for every
//! consumer, never a materialized trace.
//!
//! Replay is byte-identical to the fused engine — `SimReport` equality
//! including `branch_trace`, `prob_consumed` and the error paths — which
//! `tests/engine_equivalence.rs` and the capture-then-replay property
//! test lock in.

use probranch_core::{PbsConfig, PbsStats, PbsUnit};
use probranch_isa::{ExecClass, Program};
use probranch_predictor::{BranchPredictor, PredictorDispatch, PredictorVisitor};

use crate::cache::MemoryHierarchy;
use crate::decode::InstTiming;
use crate::machine::{BranchEvent, BranchEventKind, EmuConfig, EmuError, Emulator, StepRecord};
use crate::ooo::OooTimingModel;
use crate::sim::{SimConfig, SimReport};

/// Records per [`TraceChunk`]: 64 Ki packed records = 512 KiB — small
/// enough to stay cache-resident while a convoy streams it through
/// several consumers (and the bounded-memory figure for streaming
/// convoys), large enough to amortize the per-chunk bookkeeping and
/// consumer switches.
pub const TRACE_CHUNK_RECORDS: usize = 1 << 16;

/// One dynamic instruction of a captured trace, packed to 8 bytes.
///
/// A timing-only pass needs less than the 16-byte live [`StepRecord`]:
/// the data address is replaced by its pre-simulated cache latency, and
/// the branch event fits one byte. Halving the record halves the memory
/// a trace holds *and* the bandwidth every replay consumer streams.
///
/// The two latency fields are exact pre-simulations of the timing
/// model's `MemoryHierarchy::default()`: the hierarchy is deterministic
/// given the interleaved access stream (instruction fetch, then the
/// data access for loads, in program order), and that stream is fixed
/// by the trace — so capture resolves the cache model once and replay
/// consumers read two bytes instead of re-simulating three LRU caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayRec {
    /// PC of the instruction.
    pub pc: u32,
    /// Packed branch event; see [`ReplayRec::branch`].
    branch: u8,
    /// Extra front-end stall cycles of the instruction fetch (0 on an
    /// L1-I hit).
    pub istall: u8,
    /// Load-to-use latency for loads; 0 for every other class.
    pub dlat: u8,
}

impl ReplayRec {
    const PRESENT: u8 = 1 << 0;
    const TAKEN: u8 = 1 << 1;
    const PROB: u8 = 1 << 2;
    const KIND_SHIFT: u32 = 3;

    /// Packs a live record's branch resolution.
    #[inline]
    fn pack(rec: &StepRecord, istall: u8, dlat: u8) -> ReplayRec {
        let branch = match rec.branch {
            None => 0,
            Some(ev) => {
                let kind = match ev.kind {
                    BranchEventKind::Conditional => 0u8,
                    BranchEventKind::PbsDirected => 1,
                    BranchEventKind::Unconditional => 2,
                    BranchEventKind::Call => 3,
                    BranchEventKind::Ret => 4,
                };
                Self::PRESENT
                    | (Self::TAKEN * ev.taken as u8)
                    | (Self::PROB * ev.is_prob as u8)
                    | (kind << Self::KIND_SHIFT)
            }
        };
        ReplayRec {
            pc: rec.pc,
            branch,
            istall,
            dlat,
        }
    }

    /// The branch resolution, exactly as the live [`StepRecord`]
    /// carried it.
    #[inline(always)]
    pub fn branch(&self) -> Option<BranchEvent> {
        if self.branch & Self::PRESENT == 0 {
            return None;
        }
        let kind = match self.branch >> Self::KIND_SHIFT {
            0 => BranchEventKind::Conditional,
            1 => BranchEventKind::PbsDirected,
            2 => BranchEventKind::Unconditional,
            3 => BranchEventKind::Call,
            _ => BranchEventKind::Ret,
        };
        Some(BranchEvent {
            taken: self.branch & Self::TAKEN != 0,
            kind,
            is_prob: self.branch & Self::PROB != 0,
        })
    }
}

/// One chunk of a dynamic trace: a dense run of [`ReplayRec`]s.
#[derive(Debug, Clone, Default)]
pub struct TraceChunk {
    recs: Vec<ReplayRec>,
}

impl TraceChunk {
    /// An empty chunk with capacity for [`TRACE_CHUNK_RECORDS`] —
    /// allocate once, refill per [`TraceStream::fill`] call.
    pub fn with_chunk_capacity() -> TraceChunk {
        TraceChunk {
            recs: Vec::with_capacity(TRACE_CHUNK_RECORDS),
        }
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The records.
    pub fn records(&self) -> &[ReplayRec] {
        &self.recs
    }

    /// Heap bytes held by the chunk's buffer (capacity, not length —
    /// the number that matters for peak-memory accounting).
    pub fn bytes(&self) -> usize {
        self.recs.capacity() * std::mem::size_of::<ReplayRec>()
    }
}

/// The architectural results of a captured run — everything a
/// [`SimReport`] carries that the timing model does not produce.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFunctional {
    /// Committed dynamic instructions (== total trace records).
    pub instructions: u64,
    /// Program outputs, ascending by port.
    pub outputs: Vec<(u16, Vec<u64>)>,
    /// Probabilistic values in consumption order.
    pub prob_consumed: Vec<u64>,
    /// PBS event counters, when PBS was enabled.
    pub pbs: Option<PbsStats>,
}

/// The capture half of the fused engine, split out as a chunk stream.
///
/// Drive it with [`fill`](TraceStream::fill) until it reports the
/// machine halted, then take the architectural results with
/// [`finish`](TraceStream::finish). Only the emulation-key fields of the
/// passed [`SimConfig`] matter (`pbs`, `emu`, `max_insts`); predictor,
/// core and filter settings are timing-side and ignored.
#[derive(Debug)]
pub struct TraceStream {
    emu: Emulator,
    /// The pre-simulated hierarchy. Must evolve exactly as the timing
    /// model's own `MemoryHierarchy::default()` would: instruction
    /// fetch, then the data access for loads, per record in order.
    presim: MemoryHierarchy,
    timings: Box<[InstTiming]>,
    /// Per-instruction-cache-line first-touch flags, when the program is
    /// small enough that the L1-I provably never evicts a program line
    /// (≤ its 512-line capacity, consecutive line indices → at most
    /// `ways` lines per set). In that regime an instruction fetch
    /// touches the rest of the hierarchy only on the line's first
    /// access, so the full cache walk runs once per line and every
    /// later fetch is a known `istall = 0` — byte-identical to the full
    /// pre-simulation, measurably cheaper on the per-record hot path.
    /// Empty for larger programs (full pre-simulation per fetch).
    itouched: Box<[bool]>,
    /// Consecutive pcs per L1-I line (`line_bytes / 8`-byte
    /// instructions) — the divisor `itouched` was sized with.
    pcs_per_line: usize,
    executed: u64,
    max_insts: u64,
    halted: bool,
}

impl TraceStream {
    /// Starts capturing `program` under `config`'s emulation key.
    pub fn new(program: &Program, config: &SimConfig) -> TraceStream {
        let emu = match &config.pbs {
            Some(pbs_cfg) => Emulator::with_pbs(
                program.clone(),
                config.emu.clone(),
                PbsUnit::new(pbs_cfg.clone()),
            ),
            None => Emulator::new(program.clone(), config.emu.clone()),
        };
        let timings: Box<[InstTiming]> = emu.decoded().insts().iter().map(|d| d.timing).collect();
        let presim = MemoryHierarchy::default();
        // Instructions are 8 bytes in the timing model's address space,
        // so one cache line covers `line_bytes / 8` consecutive pcs.
        let pcs_per_line = (presim.l1i().line_bytes() / 8).max(1);
        let line_count = timings.len().div_ceil(pcs_per_line);
        let itouched = if line_count <= presim.l1i().capacity_lines() {
            vec![false; line_count].into_boxed_slice()
        } else {
            Box::default()
        };
        TraceStream {
            emu,
            presim,
            timings,
            itouched,
            pcs_per_line,
            executed: 0,
            max_insts: config.max_insts,
            halted: false,
        }
    }

    /// The per-pc timing metadata replay consumers index by
    /// [`StepRecord::pc`] — the only part of the decoded program a
    /// timing-only pass needs.
    pub fn timings(&self) -> &[InstTiming] {
        &self.timings
    }

    /// Refills `chunk` with the next run of records (clearing it first)
    /// and pre-simulates their latencies. Returns `false` — with `chunk`
    /// left empty — once the machine has halted.
    ///
    /// # Errors
    ///
    /// Propagates emulator faults, and returns
    /// [`EmuError::InstLimitExceeded`] at exactly the dynamic
    /// instruction where the fused engine would: when the dynamic
    /// instruction count reaches `max_insts` without a halt.
    pub fn fill(&mut self, chunk: &mut TraceChunk) -> Result<bool, EmuError> {
        chunk.recs.clear();
        if self.halted {
            return Ok(false);
        }
        // Cap the chunk at the remaining instruction budget so the limit
        // trips at exactly the same dynamic instruction as the fused
        // engine's batch loop.
        let budget = (self.max_insts - self.executed).clamp(1, TRACE_CHUNK_RECORDS as u64) as usize;
        let load_class = ExecClass::Load.index() as u8;
        let small_program = !self.itouched.is_empty();
        let pcs_per_line = self.pcs_per_line;
        let TraceStream {
            emu,
            presim,
            timings,
            itouched,
            ..
        } = self;
        // Emulate, pre-simulate and pack in one pass: each record is
        // handed straight from the interpreter to the chunk, no
        // intermediate record buffer.
        let n = emu.step_block_with(budget, |rec| {
            // L1-I-resident fast path: once a line has been fetched it
            // can never leave the L1-I (see `itouched`), so only the
            // first touch walks the hierarchy (and inserts into the
            // shared L2, exactly as the full simulation would).
            let istall = if small_program {
                let line = rec.pc as usize / pcs_per_line;
                if itouched[line] {
                    0
                } else {
                    itouched[line] = true;
                    presim.inst_access(rec.pc as u64 * 8)
                }
            } else {
                presim.inst_access(rec.pc as u64 * 8)
            };
            let dlat = if timings[rec.pc as usize].class == load_class {
                let addr = rec.mem_addr().expect("loads carry an address");
                presim.data_access(addr)
            } else {
                0
            };
            debug_assert!(istall <= u8::MAX as u64 && dlat <= u8::MAX as u64);
            chunk
                .recs
                .push(ReplayRec::pack(&rec, istall as u8, dlat as u8));
        })?;
        if n == 0 {
            self.halted = true;
            return Ok(false);
        }
        self.executed += n as u64;
        if self.executed >= self.max_insts {
            self.halted = true;
            return Err(EmuError::InstLimitExceeded {
                limit: self.max_insts,
            });
        }
        Ok(true)
    }

    /// The architectural results, once [`fill`](TraceStream::fill) has
    /// reported the machine halted.
    pub fn finish(self) -> TraceFunctional {
        TraceFunctional {
            instructions: self.emu.executed(),
            outputs: self.emu.outputs_sorted(),
            prob_consumed: self.emu.prob_consumed().to_vec(),
            pbs: self.emu.pbs_stats(),
        }
    }
}

/// A materialized dynamic trace: one emulation key's full record stream
/// in chunks, the per-pc timing metadata, the pre-simulated cache
/// latencies and the architectural results — everything `N` timing
/// models need to replay the run without re-emulating it.
#[derive(Debug, Clone)]
pub struct DynTrace {
    timings: Box<[InstTiming]>,
    chunks: Vec<TraceChunk>,
    functional: TraceFunctional,
    /// The emulation key the trace was captured under, re-checked at
    /// replay time.
    pbs: Option<PbsConfig>,
    emu: EmuConfig,
}

impl DynTrace {
    /// Captures the full trace of `program` under `config`'s emulation
    /// key (`pbs`, `emu`, `max_insts`).
    ///
    /// # Errors
    ///
    /// Exactly the errors [`simulate`](crate::simulate) would return:
    /// emulator faults, or [`EmuError::InstLimitExceeded`] when the
    /// program does not halt within `config.max_insts` — a trace only
    /// exists for a run that completed.
    pub fn capture(program: &Program, config: &SimConfig) -> Result<DynTrace, EmuError> {
        let mut stream = TraceStream::new(program, config);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = TraceChunk::with_chunk_capacity();
            if !stream.fill(&mut chunk)? {
                break;
            }
            chunks.push(chunk);
        }
        if let Some(last) = chunks.last_mut() {
            last.recs.shrink_to_fit();
        }
        Ok(DynTrace {
            timings: stream.timings.clone(),
            functional: stream.finish(),
            chunks,
            pbs: config.pbs.clone(),
            emu: config.emu.clone(),
        })
    }

    /// Total dynamic instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.functional.instructions
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunks, in program order.
    pub fn chunks(&self) -> &[TraceChunk] {
        &self.chunks
    }

    /// The per-pc timing metadata for replay consumers.
    pub fn timings(&self) -> &[InstTiming] {
        &self.timings
    }

    /// The architectural results of the captured run.
    pub fn functional(&self) -> &TraceFunctional {
        &self.functional
    }

    /// Heap bytes held by the trace (records, latencies, timing table
    /// and architectural results) — the peak-memory figure the
    /// throughput report surfaces per cell.
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(TraceChunk::bytes).sum::<usize>()
            + self.timings.len() * std::mem::size_of::<InstTiming>()
            + self.functional.prob_consumed.capacity() * 8
            + self
                .functional
                .outputs
                .iter()
                .map(|(_, v)| v.capacity() * 8)
                .sum::<usize>()
    }

    /// Panics unless `config` shares the trace's emulation key — a
    /// replay under a different PBS or emulator configuration would
    /// silently time a different program run.
    pub fn check_compatible(&self, config: &SimConfig) {
        assert_eq!(
            self.pbs, config.pbs,
            "replay PBS config differs from the captured trace's"
        );
        assert_eq!(
            self.emu, config.emu,
            "replay emulator config differs from the captured trace's"
        );
    }
}

/// The consume half of the fused engine: one timing model and its
/// statically dispatched predictor, fed chunks of a captured trace.
#[derive(Debug)]
pub struct ReplayConsumer {
    timing: OooTimingModel,
    predictor: PredictorDispatch,
    filter_prob: bool,
}

/// The chunk-drain loop as a [`PredictorVisitor`], so
/// [`PredictorDispatch`] resolves to the concrete predictor *once per
/// chunk* and the whole loop body — predict/update included —
/// monomorphizes per predictor type.
struct DrainChunk<'a> {
    timing: &'a mut OooTimingModel,
    timings: &'a [InstTiming],
    chunk: &'a TraceChunk,
    filter_prob: bool,
}

impl PredictorVisitor for DrainChunk<'_> {
    type Out = ();

    #[inline]
    fn visit<P: BranchPredictor + ?Sized>(self, predictor: &mut P) {
        let load_class = ExecClass::Load.index() as u8;
        for rec in &self.chunk.recs {
            let t = &self.timings[rec.pc as usize];
            let exec_lat = if t.class == load_class {
                rec.dlat as u64
            } else {
                self.timing.static_latency(t.class)
            };
            self.timing.consume_core(
                rec.pc,
                t,
                rec.branch(),
                rec.istall as u64,
                exec_lat,
                predictor,
                self.filter_prob,
            );
        }
    }
}

impl ReplayConsumer {
    /// A consumer for `config`'s timing side (core, predictor, filter
    /// mode, branch tracing).
    pub fn new(config: &SimConfig) -> ReplayConsumer {
        let mut timing = OooTimingModel::new(config.core.clone());
        if config.collect_branch_trace {
            timing.enable_trace();
        }
        ReplayConsumer {
            timing,
            predictor: config.predictor.build_dispatch(),
            filter_prob: config.filter_prob_from_predictor,
        }
    }

    /// Drains one chunk through the timing model. `timings` is the
    /// per-pc metadata of the trace the chunk came from.
    #[inline]
    pub fn consume_chunk(&mut self, timings: &[InstTiming], chunk: &TraceChunk) {
        let ReplayConsumer {
            timing,
            predictor,
            filter_prob,
        } = self;
        predictor.visit_mut(DrainChunk {
            timing,
            timings,
            chunk,
            filter_prob: *filter_prob,
        });
    }

    /// Finishes the replay: the timing model's statistics joined with
    /// the trace's architectural results into the same [`SimReport`] the
    /// fused engine would have produced.
    pub fn into_report(mut self, functional: &TraceFunctional) -> SimReport {
        SimReport {
            timing: self.timing.stats(),
            pbs: functional.pbs,
            outputs: functional.outputs.clone(),
            prob_consumed: functional.prob_consumed.clone(),
            branch_trace: self.timing.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, PredictorChoice};
    use probranch_isa::{CmpOp, ProgramBuilder, Reg};

    /// A loop mixing regular branches, a ~50% probabilistic branch and
    /// memory traffic — every record shape a trace can hold.
    fn workload(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x9E3779B97F4A7C15u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 2) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.li(Reg::R9, 64);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shr(Reg::R5, Reg::R1, 27).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.st(Reg::R7, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join);
        b.add(Reg::R3, Reg::R3, 1);
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    fn configs() -> Vec<SimConfig> {
        let mut v = Vec::new();
        for pbs in [false, true] {
            for p in [PredictorChoice::Tournament, PredictorChoice::TageScL] {
                let mut cfg = SimConfig::default().predictor(p);
                if pbs {
                    cfg = cfg.with_pbs();
                }
                cfg.collect_branch_trace = true;
                v.push(cfg);
            }
        }
        v
    }

    #[test]
    fn capture_then_replay_equals_fused_for_every_config() {
        let p = workload(3000);
        for cfg in configs() {
            let fused = simulate(&p, &cfg).unwrap();
            let trace = DynTrace::capture(&p, &cfg).unwrap();
            assert_eq!(trace.instructions(), fused.timing.instructions);
            let replayed = crate::sim::simulate_replay(&trace, &cfg).unwrap();
            assert_eq!(replayed, fused, "replay drift under {cfg:?}");
        }
    }

    #[test]
    fn one_trace_serves_many_timing_configs() {
        let p = workload(2000);
        let key = SimConfig::default().with_pbs();
        let trace = DynTrace::capture(&p, &key).unwrap();
        for predictor in [
            PredictorChoice::Tournament,
            PredictorChoice::TageScL,
            PredictorChoice::StaticTaken,
        ] {
            let cfg = SimConfig::default().with_pbs().predictor(predictor);
            let fused = simulate(&p, &cfg).unwrap();
            let replayed = crate::sim::simulate_replay(&trace, &cfg).unwrap();
            assert_eq!(replayed, fused, "replay drift for {predictor:?}");
        }
    }

    #[test]
    fn trace_spans_multiple_chunks_on_long_runs() {
        let p = workload(TRACE_CHUNK_RECORDS as i64 / 4);
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&p, &cfg).unwrap();
        assert!(trace.chunk_count() > 1, "chunks: {}", trace.chunk_count());
        assert!(trace.bytes() > 0);
        let total: usize = trace.chunks().iter().map(TraceChunk::len).sum();
        assert_eq!(total as u64, trace.instructions());
        let fused = simulate(&p, &cfg).unwrap();
        assert_eq!(crate::sim::simulate_replay(&trace, &cfg).unwrap(), fused);
    }

    #[test]
    fn capture_reports_inst_limit_like_the_fused_engine() {
        let p = workload(100_000);
        for max_insts in [1, 2, 1000, TRACE_CHUNK_RECORDS as u64 + 1] {
            let cfg = SimConfig {
                max_insts,
                ..SimConfig::default()
            };
            let fused = simulate(&p, &cfg);
            let captured = DynTrace::capture(&p, &cfg).map(|_| ());
            assert_eq!(
                captured.unwrap_err(),
                fused.unwrap_err(),
                "limit {max_insts}"
            );
        }
    }

    #[test]
    fn replay_honours_a_smaller_instruction_budget() {
        let p = workload(500);
        let key = SimConfig::default();
        let trace = DynTrace::capture(&p, &key).unwrap();
        let tight = SimConfig {
            max_insts: trace.instructions(),
            ..SimConfig::default()
        };
        assert_eq!(
            crate::sim::simulate_replay(&trace, &tight),
            simulate(&p, &tight)
        );
    }

    #[test]
    #[should_panic(expected = "replay PBS config differs")]
    fn replay_rejects_mismatched_pbs_key() {
        let p = workload(100);
        let trace = DynTrace::capture(&p, &SimConfig::default()).unwrap();
        let _ = crate::sim::simulate_replay(&trace, &SimConfig::default().with_pbs());
    }
}
