//! On-disk persistence for captured [`DynTrace`]s.
//!
//! A persisted trace lets repeated `figures` invocations (and CI) skip
//! functional emulation entirely: the SoA chunk streams, the per-pc
//! timing metadata and the architectural results are written once per
//! emulation key and re-loaded byte-identically. Files are keyed and
//! validated by a caller-supplied **content hash** of everything that
//! shapes the captured stream — workload identity, seed derivation,
//! PBS/emulator configuration, ISA version (see
//! [`SimConfig::emu_key_fingerprint`]) — plus a whole-file digest, a
//! format magic and a format version. *Any* validation failure —
//! missing file, truncation, bit rot, a stale format or a stale content
//! hash — makes [`DynTrace::read_file`] return `None`, and the caller
//! falls back to a fresh capture: a bad file can cost a re-emulation,
//! never a wrong result.
//!
//! The format is a flat little-endian byte stream (no external
//! dependencies), written atomically via a temp file + rename so a
//! crashed or concurrent writer can never leave a half-written file
//! under the final name.

use std::io::Write;
use std::path::Path;

use probranch_core::PbsStats;
use probranch_rng::SplitMix64;

use crate::decode::InstTiming;
use crate::sim::SimConfig;
use crate::trace::{DynTrace, TraceChunk, TraceFunctional};

/// File magic: identifies a probranch trace file.
const MAGIC: &[u8; 8] = b"PBTRACE\0";

/// Version of the on-disk layout. Bump on any layout change; readers
/// reject other versions (falling back to capture).
pub const TRACE_FILE_VERSION: u32 = 1;

/// Word-folding digest over a byte stream (SplitMix64-mixed FNV-style
/// accumulation): not cryptographic, but any truncation or flipped bit
/// changes it with overwhelming probability.
fn digest(bytes: &[u8]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let v = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = SplitMix64::mix(h ^ v);
    }
    let mut tail = [0u8; 8];
    let rest = words.remainder();
    tail[..rest.len()].copy_from_slice(rest);
    SplitMix64::mix(h ^ u64::from_le_bytes(tail))
}

// ---- writer ---------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn u32s(&mut self, v: &[u32]) {
        for &x in v {
            self.u32(x);
        }
    }
    fn u64s(&mut self, v: &[u64]) {
        for &x in v {
            self.u64(x);
        }
    }
}

// ---- reader ---------------------------------------------------------------

/// A bounds-checked cursor over the file bytes; every accessor returns
/// `None` past the end, which bubbles up as "fall back to capture".
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    /// A length field that must also be plausible for the remaining
    /// bytes (guards against allocating huge buffers for corrupt
    /// lengths before the digest check would catch them).
    fn len(&mut self, elem_bytes: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        if n.checked_mul(elem_bytes.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
    fn u32s(&mut self, n: usize) -> Option<Vec<u32>> {
        let raw = self.take(n.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect(),
        )
    }
    fn u64s(&mut self, n: usize) -> Option<Vec<u64>> {
        let raw = self.take(n.checked_mul(8)?)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect(),
        )
    }
}

impl DynTrace {
    /// Serializes the trace (with its identifying `content_hash`) into
    /// the on-disk format.
    fn encode(&self, content_hash: u64) -> Vec<u8> {
        let mut e = Enc {
            buf: Vec::with_capacity(64 + self.bytes()),
        };
        e.bytes(MAGIC);
        e.u32(TRACE_FILE_VERSION);
        e.u64(content_hash);
        e.u64(self.functional.instructions);
        e.u64(self.timings.len() as u64);
        for t in self.timings.iter() {
            e.bytes(&t.uses);
            e.u8(t.n_uses);
            e.bytes(&t.defs);
            e.u8(t.n_defs);
            e.u8(t.class);
        }
        e.u64(self.functional.outputs.len() as u64);
        for (port, values) in &self.functional.outputs {
            e.u16(*port);
            e.u64(values.len() as u64);
            e.u64s(values);
        }
        e.u64(self.functional.prob_consumed.len() as u64);
        e.u64s(&self.functional.prob_consumed);
        match &self.functional.pbs {
            None => e.u8(0),
            Some(s) => {
                e.u8(1);
                e.u64s(&[
                    s.directed,
                    s.bootstrap,
                    s.bypassed,
                    s.allocations,
                    s.const_val_demotions,
                    s.evictions,
                    s.context_flushes,
                ]);
            }
        }
        e.u64(self.chunks.len() as u64);
        for c in &self.chunks {
            e.u64(c.pcs.len() as u64);
            e.u64(c.branches.len() as u64);
            e.u32(c.open_run);
            e.u32s(&c.runs);
            e.bytes(&c.branches);
            e.u32s(&c.pcs);
            e.bytes(&c.istalls);
            e.bytes(&c.dlats);
        }
        let d = digest(&e.buf);
        e.u64(d);
        e.buf
    }

    /// Writes the trace to `path` atomically (temp file + rename), so a
    /// crash or a concurrent writer can never leave a torn file under
    /// the final name.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing or renaming the temp file.
    pub fn write_file(&self, path: &Path, content_hash: u64) -> std::io::Result<()> {
        // The temp name must be unique per *writer*, not just per
        // process: concurrent same-process writers of one key would
        // otherwise share a temp file and could publish a torn (digest-
        // failing) trace.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = self.encode(content_hash);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads a trace previously persisted with
    /// [`write_file`](DynTrace::write_file), returning `None` — never a
    /// wrong trace — unless the file exists, parses, carries the
    /// expected format version *and* `content_hash`, passes the
    /// whole-file digest, and is structurally consistent. `config`
    /// supplies the emulation key the returned trace replays under (the
    /// content hash asserts it matches what was captured).
    pub fn read_file(path: &Path, content_hash: u64, config: &SimConfig) -> Option<DynTrace> {
        let bytes = std::fs::read(path).ok()?;
        Self::decode(&bytes, content_hash, config)
    }

    fn decode(bytes: &[u8], content_hash: u64, config: &SimConfig) -> Option<DynTrace> {
        if bytes.len() < MAGIC.len() + 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        if u64::from_le_bytes(tail.try_into().ok()?) != digest(body) {
            return None;
        }
        let mut d = Dec { buf: body, pos: 0 };
        if d.take(MAGIC.len())? != MAGIC
            || d.u32()? != TRACE_FILE_VERSION
            || d.u64()? != content_hash
        {
            return None;
        }
        let instructions = d.u64()?;
        let n_timings = d.len(9)?;
        let mut timings = Vec::with_capacity(n_timings);
        for _ in 0..n_timings {
            let raw = d.take(9)?;
            timings.push(InstTiming {
                uses: raw[..4].try_into().expect("4 use slots"),
                n_uses: raw[4],
                defs: raw[5..7].try_into().expect("2 def slots"),
                n_defs: raw[7],
                class: raw[8],
            });
        }
        let n_ports = d.len(10)?;
        let mut outputs = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let port = d.u16()?;
            let n = d.len(8)?;
            outputs.push((port, d.u64s(n)?));
        }
        let n_prob = d.len(8)?;
        let prob_consumed = d.u64s(n_prob)?;
        let pbs = match d.u8()? {
            0 => None,
            1 => {
                let v = d.u64s(7)?;
                Some(PbsStats {
                    directed: v[0],
                    bootstrap: v[1],
                    bypassed: v[2],
                    allocations: v[3],
                    const_val_demotions: v[4],
                    evictions: v[5],
                    context_flushes: v[6],
                })
            }
            _ => return None,
        };
        let n_chunks = d.len(1)?;
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut total = 0u64;
        for _ in 0..n_chunks {
            let len = d.len(6)?;
            let n_branches = d.len(1)?;
            let open_run = d.u32()?;
            let runs = d.u32s(n_branches)?;
            let branches = d.take(n_branches)?.to_vec();
            let pcs = d.u32s(len)?;
            let istalls = d.take(len)?.to_vec();
            let dlats = d.take(len)?.to_vec();
            // Structural consistency: the run index must tile the
            // record count, and every pc must index the timing table —
            // the invariants replay consumers rely on.
            let indexed: u64 = runs.iter().map(|&r| u64::from(r)).sum::<u64>()
                + n_branches as u64
                + u64::from(open_run);
            if indexed != len as u64 || pcs.iter().any(|&pc| pc as usize >= timings.len()) {
                return None;
            }
            total += len as u64;
            let mut chunk = TraceChunk {
                pcs,
                istalls,
                dlats,
                branches,
                runs,
                open_run,
                breqs: Vec::new(),
                breq_prob: Vec::new(),
            };
            // The on-disk format carries only the raw streams; the
            // derived request stream is recomputed on load.
            chunk.rebuild_breqs();
            chunks.push(chunk);
        }
        if d.pos != body.len() || total != instructions {
            return None;
        }
        Some(DynTrace {
            timings: timings.into_boxed_slice(),
            chunks,
            functional: TraceFunctional {
                instructions,
                outputs,
                prob_consumed,
                pbs,
            },
            pbs: config.pbs.clone(),
            emu: config.emu.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_replay, PredictorChoice};
    use probranch_isa::{CmpOp, ProgramBuilder, Reg};

    fn workload(iters: i64) -> probranch_isa::Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x243F6A8885A308D3u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 3) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.li(Reg::R9, 256);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.st(Reg::R7, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join);
        b.add(Reg::R3, Reg::R3, 1);
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("probranch-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn trace_file_round_trips_byte_identically() {
        let cfg = SimConfig::default().with_pbs();
        let trace = DynTrace::capture(&workload(3000), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("roundtrip");
        let path = dir.join("trace.bin");
        trace.write_file(&path, hash).expect("write");
        let back = DynTrace::read_file(&path, hash, &cfg).expect("load");
        assert_eq!(back, trace, "persisted trace must round-trip exactly");
        // And the replay through the loaded trace is byte-identical.
        let timing_cfg = cfg.clone().predictor(PredictorChoice::Tournament);
        assert_eq!(
            simulate_replay(&back, &timing_cfg),
            simulate_replay(&trace, &timing_cfg)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_or_corrupt_files_are_rejected_not_misread() {
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&workload(500), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("corrupt");
        let path = dir.join("trace.bin");
        trace.write_file(&path, hash).expect("write");

        // Wrong content hash (a stale file for a different key).
        assert!(DynTrace::read_file(&path, hash ^ 1, &cfg).is_none());
        // Missing file.
        assert!(DynTrace::read_file(&dir.join("absent.bin"), hash, &cfg).is_none());

        let pristine = std::fs::read(&path).unwrap();
        // Truncations at every region boundary-ish size.
        for cut in [0, 7, 16, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                DynTrace::read_file(&path, hash, &cfg).is_none(),
                "truncated at {cut}"
            );
        }
        // Single flipped bits across the file (magic, header, streams,
        // digest).
        for pos in [0, 9, 13, 21, pristine.len() / 3, pristine.len() - 3] {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                DynTrace::read_file(&path, hash, &cfg).is_none(),
                "bit flip at {pos}"
            );
        }
        // A different format version.
        let mut bad = pristine.clone();
        bad[8] = bad[8].wrapping_add(1);
        std::fs::write(&path, &bad).unwrap();
        assert!(DynTrace::read_file(&path, hash, &cfg).is_none());

        // The pristine bytes still load.
        std::fs::write(&path, &pristine).unwrap();
        assert_eq!(DynTrace::read_file(&path, hash, &cfg).unwrap(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_separates_emulation_keys_only() {
        let base = SimConfig::default();
        let pbs = SimConfig::default().with_pbs();
        assert_ne!(base.emu_key_fingerprint(), pbs.emu_key_fingerprint());
        // Timing-side fields must not affect the fingerprint…
        let mut timing_only = base.clone().predictor(PredictorChoice::Tournament);
        timing_only.filter_prob_from_predictor = true;
        timing_only.collect_branch_trace = true;
        assert_eq!(
            base.emu_key_fingerprint(),
            timing_only.emu_key_fingerprint()
        );
        // …while every key field does.
        let mut budget = base.clone();
        budget.max_insts += 1;
        assert_ne!(base.emu_key_fingerprint(), budget.emu_key_fingerprint());
        let mut mem = base.clone();
        mem.emu.mem_words *= 2;
        assert_ne!(base.emu_key_fingerprint(), mem.emu_key_fingerprint());
    }
}
