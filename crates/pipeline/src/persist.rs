//! On-disk persistence for captured [`DynTrace`]s.
//!
//! A persisted trace lets repeated `figures` invocations (and CI) skip
//! functional emulation entirely: the SoA chunk streams, the per-pc
//! timing metadata and the architectural results are written once per
//! emulation key and re-loaded byte-identically. Files are keyed and
//! validated by a caller-supplied **content hash** of everything that
//! shapes the captured stream — workload identity, seed derivation,
//! PBS/emulator configuration, ISA version (see
//! [`SimConfig::emu_key_fingerprint`]) — plus a whole-file digest, a
//! format magic and a format version. *Any* validation failure —
//! missing file, truncation, bit rot, a stale format or a stale content
//! hash — makes [`DynTrace::read_file`] return `None`, and the caller
//! falls back to a fresh capture: a bad file can cost a re-emulation,
//! never a wrong result.
//!
//! The format is a flat little-endian byte stream (no external
//! dependencies), written atomically via a temp file + rename (then a
//! best-effort parent-directory fsync, so the *publication* survives a
//! crash, not just the data) — a crashed or concurrent writer can never
//! leave a half-written file under the final name. Writers that die
//! between temp-file creation and the rename do leave orphaned
//! `*.tmp.<pid>.<n>` files; [`sweep_stale_temps`] reaps those when the
//! trace store opens.
//!
//! # Zero-copy loads (format v2)
//!
//! [`DynTrace::read_file`] memory-maps the file read-only and serves
//! each chunk's record streams as borrowed little-endian views over the
//! map ([`TraceChunk::is_mapped`]): a warm-start load materializes only
//! the timing table, the architectural results and the derived
//! predictor-request streams — the bulk record data stays in the page
//! cache and is paged in on demand. Validation is still a single full
//! pass (the whole-file digest reads the map once, with no second
//! buffer); v2 keeps v1's byte layout — already stream-contiguous, and
//! the reader decodes u32 streams with unaligned little-endian loads,
//! so no padding is needed — but v1 files were produced before the
//! mapped reader existed, and the version bump retires them (readers
//! reject them and fall back to capture). [`DynTrace::read_file_owned`]
//! decodes the same format into owned buffers, as the
//! equivalence-testing and diagnostic path.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use probranch_core::PbsStats;
use probranch_faults as faults;
use probranch_mmap::Mmap;
use probranch_rng::SplitMix64;

use crate::decode::InstTiming;
use crate::sim::SimConfig;
use crate::trace::{ByteView, DynTrace, TraceChunk, TraceFunctional, U32s, U8s};

/// File magic: identifies a probranch trace file.
const MAGIC: &[u8; 8] = b"PBTRACE\0";

/// Version of the on-disk layout. Bump on any layout change; readers
/// reject other versions (falling back to capture). v2 == v1's byte
/// layout, re-versioned when the memory-mapped reader landed.
pub const TRACE_FILE_VERSION: u32 = 2;

/// Word-folding digest over a byte stream (SplitMix64-mixed FNV-style
/// accumulation): not cryptographic, but any truncation or flipped bit
/// changes it with overwhelming probability.
fn digest(bytes: &[u8]) -> u64 {
    let mut d = StreamDigest::new(bytes.len() as u64);
    d.update(bytes);
    d.finish()
}

/// The incremental form of [`digest`]: byte-for-byte compatible however
/// the input is split across [`update`](StreamDigest::update) calls, so
/// the writer digests the trace while streaming it out instead of
/// materializing one serialized copy first. Needs the total length
/// up-front (the digest seeds with it) — the writer computes it exactly
/// via [`DynTrace::encoded_len`].
struct StreamDigest {
    h: u64,
    /// Bytes of a partially-filled 8-byte word carried between updates.
    carry: [u8; 8],
    carry_len: usize,
}

impl StreamDigest {
    fn new(total_len: u64) -> StreamDigest {
        StreamDigest {
            h: 0x9E37_79B9_7F4A_7C15u64 ^ total_len,
            carry: [0u8; 8],
            carry_len: 0,
        }
    }

    fn update(&mut self, mut bytes: &[u8]) {
        if self.carry_len > 0 {
            let take = (8 - self.carry_len).min(bytes.len());
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&bytes[..take]);
            self.carry_len += take;
            bytes = &bytes[take..];
            if self.carry_len < 8 {
                return;
            }
            self.h = SplitMix64::mix(self.h ^ u64::from_le_bytes(self.carry));
            self.carry_len = 0;
        }
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            let v = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            self.h = SplitMix64::mix(self.h ^ v);
        }
        let rest = words.remainder();
        self.carry[..rest.len()].copy_from_slice(rest);
        self.carry_len = rest.len();
    }

    fn finish(&self) -> u64 {
        // The zero-padded tail word folds in unconditionally — even
        // when the stream length is a word multiple — matching the
        // one-shot form exactly.
        let mut tail = [0u8; 8];
        tail[..self.carry_len].copy_from_slice(&self.carry[..self.carry_len]);
        SplitMix64::mix(self.h ^ u64::from_le_bytes(tail))
    }
}

// ---- writer ---------------------------------------------------------------

/// A sink that forwards at most `left` bytes and then fails with an
/// injected short-write error — the [`faults::Site::PersistShort`]
/// failpoint's model of a writer dying mid-encode. With `left` at
/// `u64::MAX` (no fault armed) it is a transparent pass-through.
struct Capped<W: Write> {
    w: W,
    left: u64,
}

impl<W: Write> Write for Capped<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.left == 0 {
            return Err(faults::io_error(faults::Site::PersistShort));
        }
        let n = buf
            .len()
            .min(usize::try_from(self.left).unwrap_or(usize::MAX));
        let written = self.w.write(&buf[..n])?;
        self.left -= written as u64;
        Ok(written)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

/// A digesting little-endian encoder over any byte sink: each value is
/// folded into the running [`StreamDigest`] as it is written, so
/// serialization is one pass with no in-memory copy of the file.
struct Enc<W: Write> {
    w: W,
    digest: StreamDigest,
    written: u64,
}

impl<W: Write> Enc<W> {
    fn bytes(&mut self, v: &[u8]) -> std::io::Result<()> {
        self.digest.update(v);
        self.written += v.len() as u64;
        self.w.write_all(v)
    }
    fn u8(&mut self, v: u8) -> std::io::Result<()> {
        self.bytes(&[v])
    }
    fn u16(&mut self, v: u16) -> std::io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }
    fn u32(&mut self, v: u32) -> std::io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> std::io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }
    /// A chunk's u32 stream. A mapped stream is already the on-disk
    /// little-endian bytes and passes straight through; an owned one is
    /// converted through a small stack buffer.
    fn u32_stream(&mut self, s: &U32s) -> std::io::Result<()> {
        match s {
            U32s::Owned(v) => {
                let mut buf = [0u8; 4096];
                for batch in v.chunks(buf.len() / 4) {
                    for (i, &x) in batch.iter().enumerate() {
                        buf[4 * i..4 * i + 4].copy_from_slice(&x.to_le_bytes());
                    }
                    self.bytes(&buf[..4 * batch.len()])?;
                }
                Ok(())
            }
            U32s::Mapped(b) => self.bytes(b.as_slice()),
        }
    }
    fn u64s(&mut self, v: &[u64]) -> std::io::Result<()> {
        for &x in v {
            self.u64(x)?;
        }
        Ok(())
    }
}

// ---- reader ---------------------------------------------------------------

/// A bounds-checked cursor over the file bytes; every accessor returns
/// `None` past the end, which bubbles up as "fall back to capture".
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    /// A count field that must also be plausible for the remaining
    /// bytes, taking `min_elem_bytes` as each element's *minimum*
    /// encoded size — for variable-size elements (output ports, chunks)
    /// pass the smallest legal encoding, never 1, so a corrupt count
    /// cannot pre-allocate more entries than the file could possibly
    /// hold before the digest check would catch it.
    fn len(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        if n.checked_mul(min_elem_bytes.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
    fn u64s(&mut self, n: usize) -> Option<Vec<u64>> {
        let raw = self.take(n.checked_mul(8)?)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect(),
        )
    }
    /// A chunk u32 stream: a zero-copy view over the map when one backs
    /// the decode, an owned decode otherwise. `self.buf` must be a
    /// prefix of the map for the recorded offsets to be file offsets —
    /// [`DynTrace::decode`] decodes the body, which starts at byte 0.
    fn u32_stream(&mut self, n: usize, backing: Option<&Arc<Mmap>>) -> Option<U32s> {
        let start = self.pos;
        let raw = self.take(n.checked_mul(4)?)?;
        Some(match backing {
            Some(map) => U32s::Mapped(ByteView::new(Arc::clone(map), start, raw.len())),
            None => U32s::Owned(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect(),
            ),
        })
    }
    /// A chunk byte stream; backing as for [`Dec::u32_stream`].
    fn u8_stream(&mut self, n: usize, backing: Option<&Arc<Mmap>>) -> Option<U8s> {
        let start = self.pos;
        let raw = self.take(n)?;
        Some(match backing {
            Some(map) => U8s::Mapped(ByteView::new(Arc::clone(map), start, raw.len())),
            None => U8s::Owned(raw.to_vec()),
        })
    }
}

impl DynTrace {
    /// The exact serialized size of the trace, digest included — the
    /// writer pre-computes it to seed the streaming digest (and as a
    /// cheap cross-check that the streamed encoding matched).
    fn encoded_len(&self) -> u64 {
        // magic, version, content hash, instruction count.
        let mut n = (MAGIC.len() + 4 + 8 + 8) as u64;
        n += 8 + self.timings.len() as u64 * 9;
        n += 8;
        for (_, values) in &self.functional.outputs {
            n += 2 + 8 + values.len() as u64 * 8;
        }
        n += 8 + self.functional.prob_consumed.len() as u64 * 8;
        n += 1 + if self.functional.pbs.is_some() { 56 } else { 0 };
        n += 8;
        for c in &self.chunks {
            // len, n_branches, open_run, then 6 B/record + 5 B/branch.
            n += 8 + 8 + 4 + 6 * c.len() as u64 + 5 * c.branch_count() as u64;
        }
        n + 8 // trailing digest
    }

    /// Streams the serialized trace (sans trailing digest) into `e`.
    fn encode_into<W: Write>(&self, e: &mut Enc<W>, content_hash: u64) -> std::io::Result<()> {
        e.bytes(MAGIC)?;
        e.u32(TRACE_FILE_VERSION)?;
        e.u64(content_hash)?;
        e.u64(self.functional.instructions)?;
        e.u64(self.timings.len() as u64)?;
        for t in self.timings.iter() {
            e.bytes(&t.uses)?;
            e.u8(t.n_uses)?;
            e.bytes(&t.defs)?;
            e.u8(t.n_defs)?;
            e.u8(t.class)?;
        }
        e.u64(self.functional.outputs.len() as u64)?;
        for (port, values) in &self.functional.outputs {
            e.u16(*port)?;
            e.u64(values.len() as u64)?;
            e.u64s(values)?;
        }
        e.u64(self.functional.prob_consumed.len() as u64)?;
        e.u64s(&self.functional.prob_consumed)?;
        match &self.functional.pbs {
            None => e.u8(0)?,
            Some(s) => {
                e.u8(1)?;
                e.u64s(&[
                    s.directed,
                    s.bootstrap,
                    s.bypassed,
                    s.allocations,
                    s.const_val_demotions,
                    s.evictions,
                    s.context_flushes,
                ])?;
            }
        }
        e.u64(self.chunks.len() as u64)?;
        for c in &self.chunks {
            e.u64(c.len() as u64)?;
            e.u64(c.branch_count() as u64)?;
            e.u32(c.open_run)?;
            e.u32_stream(&c.runs)?;
            e.bytes(c.branches.as_slice())?;
            e.u32_stream(&c.pcs)?;
            e.bytes(c.istalls.as_slice())?;
            e.bytes(c.dlats.as_slice())?;
        }
        Ok(())
    }

    /// Writes the trace to `path` atomically (temp file + rename), so a
    /// crash or a concurrent writer can never leave a torn file under
    /// the final name. After a successful rename the parent directory
    /// is fsynced (best-effort) so the publication itself — not just
    /// the file's data — survives a crash; without it a power loss
    /// shortly after return could silently roll the directory back to
    /// "no trace", costing a re-capture on the next cold start.
    ///
    /// The encoding streams through a buffered writer with an
    /// incremental digest, so writing never materializes a serialized
    /// copy of the trace in memory.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing or renaming the temp file.
    pub fn write_file(&self, path: &Path, content_hash: u64) -> std::io::Result<()> {
        self.write_file_attempt(path, content_hash, 0)
    }

    /// [`write_file`](DynTrace::write_file) with an explicit retry
    /// ordinal, folded into every failpoint salt so a retrying store
    /// re-rolls its fault schedule per attempt — under an injected
    /// transient-error plan the first attempt can fail while the retry
    /// deterministically succeeds, reproducibly across runs.
    ///
    /// # Errors
    ///
    /// As [`write_file`](DynTrace::write_file); additionally any
    /// injected fault on the `persist.*` sites of the installed
    /// [fault plan](probranch_faults::FaultPlan). A failed attempt
    /// never leaves a file under the final name, and best-effort
    /// removes its temp.
    pub fn write_file_attempt(
        &self,
        path: &Path,
        content_hash: u64,
        attempt: u64,
    ) -> std::io::Result<()> {
        let salt = [content_hash, attempt];
        if faults::injected(faults::Site::PersistEnospc, &salt) {
            return Err(faults::io_error(faults::Site::PersistEnospc));
        }
        if faults::injected(faults::Site::PersistWrite, &salt) {
            return Err(faults::io_error(faults::Site::PersistWrite));
        }
        // The temp name must be unique per *writer*, not just per
        // process: concurrent same-process writers of one key would
        // otherwise share a temp file and could publish a torn (digest-
        // failing) trace.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let total_len = self.encoded_len();
        // The short-write failpoint dies halfway through the encoding,
        // leaving a torn temp — which must never publish.
        let cap = if faults::injected(faults::Site::PersistShort, &salt) {
            total_len / 2
        } else {
            u64::MAX
        };
        let write_body = || -> std::io::Result<()> {
            let f = std::fs::File::create(&tmp)?;
            let mut e = Enc {
                w: Capped {
                    w: std::io::BufWriter::new(&f),
                    left: cap,
                },
                digest: StreamDigest::new(total_len - 8),
                written: 0,
            };
            self.encode_into(&mut e, content_hash)?;
            debug_assert_eq!(
                e.written + 8,
                total_len,
                "encoded_len out of sync with the streamed encoding"
            );
            let d = e.digest.finish();
            e.w.write_all(&d.to_le_bytes())?;
            e.w.flush()?;
            if faults::injected(faults::Site::PersistFsync, &salt) {
                return Err(faults::io_error(faults::Site::PersistFsync));
            }
            f.sync_all()
        };
        if let Err(e) = write_body() {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        if faults::injected(faults::Site::PersistRename, &salt) {
            let _ = std::fs::remove_file(&tmp);
            return Err(faults::io_error(faults::Site::PersistRename));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // Durability of the *rename*: sync the directory entry.
        // Best-effort — some filesystems reject directory fsync, and a
        // failure here only risks a re-capture after a crash, never a
        // wrong result.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Loads a trace previously persisted with
    /// [`write_file`](DynTrace::write_file), returning `None` — never a
    /// wrong trace — unless the file exists, parses, carries the
    /// expected format version *and* `content_hash`, passes the
    /// whole-file digest, and is structurally consistent. `config`
    /// supplies the emulation key the returned trace replays under (the
    /// content hash asserts it matches what was captured).
    ///
    /// The file is memory-mapped read-only and the chunk record streams
    /// of the returned trace are zero-copy views over the map (where
    /// the platform supports it — see [`Mmap`]): validation is one full
    /// pass over the map, and the load materializes only the timing
    /// table, architectural results and derived request streams.
    pub fn read_file(path: &Path, content_hash: u64, config: &SimConfig) -> Option<DynTrace> {
        match Self::load_file(path, content_hash, config, 0) {
            TraceLoad::Loaded(t) => Some(t),
            _ => None,
        }
    }

    /// [`read_file`](DynTrace::read_file) with the failure *classified*
    /// — the self-healing store's entry point. The distinctions drive
    /// different recoveries: [`TraceLoad::Io`] is worth retrying,
    /// [`TraceLoad::Stale`] is a valid file for another format/key
    /// (overwrite it), [`TraceLoad::Corrupt`] failed the digest or
    /// structural validation and should be quarantined so it is never
    /// read again, and [`TraceLoad::Missing`] is an ordinary cold
    /// start. `attempt` is the caller's retry ordinal, folded into the
    /// `mmap.load` failpoint salt so injected transient errors re-roll
    /// per attempt.
    pub fn load_file(
        path: &Path,
        content_hash: u64,
        config: &SimConfig,
        attempt: u64,
    ) -> TraceLoad {
        if faults::injected(faults::Site::MmapLoad, &[content_hash, attempt]) {
            return TraceLoad::Io(faults::io_error(faults::Site::MmapLoad));
        }
        let map = match Mmap::open(path) {
            Ok(map) => Arc::new(map),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return TraceLoad::Missing,
            Err(e) => return TraceLoad::Io(e),
        };
        Self::classify(map.as_slice(), Some(&map), content_hash, config)
    }

    /// [`read_file`](DynTrace::read_file) without the mapping: decodes
    /// the same format into fully owned buffers. The equivalence and
    /// diagnostic path — property tests assert it agrees with the
    /// mapped load byte-for-byte.
    pub fn read_file_owned(path: &Path, content_hash: u64, config: &SimConfig) -> Option<DynTrace> {
        let bytes = std::fs::read(path).ok()?;
        Self::decode(&bytes, None, content_hash, config)
    }

    /// Decodes `bytes`; when `backing` is the map those bytes came from
    /// (with `bytes` starting at file offset 0), chunk streams become
    /// zero-copy views into it instead of owned copies.
    fn decode(
        bytes: &[u8],
        backing: Option<&Arc<Mmap>>,
        content_hash: u64,
        config: &SimConfig,
    ) -> Option<DynTrace> {
        match Self::classify(bytes, backing, content_hash, config) {
            TraceLoad::Loaded(t) => Some(t),
            _ => None,
        }
    }

    /// [`decode`](DynTrace::decode) with the rejection reason kept: a
    /// file whose digest *passes* but whose format version or content
    /// hash mismatches is [`TraceLoad::Stale`] — intact, just written
    /// for another format or emulation key; anything that fails the
    /// digest, the magic, or structural validation is
    /// [`TraceLoad::Corrupt`]. The order matters: the digest runs
    /// first, so a bit flip *inside* the version or hash fields still
    /// classifies as corruption, never as staleness.
    fn classify(
        bytes: &[u8],
        backing: Option<&Arc<Mmap>>,
        content_hash: u64,
        config: &SimConfig,
    ) -> TraceLoad {
        let Some(trailer_at) = bytes.len().checked_sub(8) else {
            return TraceLoad::Corrupt;
        };
        if trailer_at < MAGIC.len() {
            return TraceLoad::Corrupt;
        }
        let (body, tail) = bytes.split_at(trailer_at);
        let tail: [u8; 8] = tail.try_into().expect("8-byte trailer");
        if u64::from_le_bytes(tail) != digest(body) {
            return TraceLoad::Corrupt;
        }
        let mut d = Dec { buf: body, pos: 0 };
        match d.take(MAGIC.len()) {
            Some(magic) if magic == MAGIC => {}
            _ => return TraceLoad::Corrupt,
        }
        match (d.u32(), d.u64()) {
            (Some(version), Some(hash)) => {
                if version != TRACE_FILE_VERSION || hash != content_hash {
                    return TraceLoad::Stale;
                }
            }
            _ => return TraceLoad::Corrupt,
        }
        match Self::decode_body(&mut d, backing, config) {
            Some(trace) => TraceLoad::Loaded(trace),
            None => TraceLoad::Corrupt,
        }
    }

    /// The post-header decode: everything after magic/version/hash.
    fn decode_body(
        d: &mut Dec<'_>,
        backing: Option<&Arc<Mmap>>,
        config: &SimConfig,
    ) -> Option<DynTrace> {
        let body = d.buf;
        let instructions = d.u64()?;
        let n_timings = d.len(9)?;
        let mut timings = Vec::with_capacity(n_timings);
        for _ in 0..n_timings {
            let raw = d.take(9)?;
            timings.push(InstTiming {
                uses: raw[..4].try_into().expect("4 use slots"),
                n_uses: raw[4],
                defs: raw[5..7].try_into().expect("2 def slots"),
                n_defs: raw[7],
                class: raw[8],
            });
        }
        let n_ports = d.len(10)?;
        let mut outputs = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let port = d.u16()?;
            let n = d.len(8)?;
            outputs.push((port, d.u64s(n)?));
        }
        let n_prob = d.len(8)?;
        let prob_consumed = d.u64s(n_prob)?;
        let pbs = match d.u8()? {
            0 => None,
            1 => {
                let v = d.u64s(7)?;
                Some(PbsStats {
                    directed: v[0],
                    bootstrap: v[1],
                    bypassed: v[2],
                    allocations: v[3],
                    const_val_demotions: v[4],
                    evictions: v[5],
                    context_flushes: v[6],
                })
            }
            _ => return None,
        };
        // An empty chunk still encodes its three header fields.
        let n_chunks = d.len(8 + 8 + 4)?;
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut total = 0u64;
        for _ in 0..n_chunks {
            let len = d.len(6)?;
            // Each branch costs at least its run entry + branch byte.
            let n_branches = d.len(5)?;
            let open_run = d.u32()?;
            let runs = d.u32_stream(n_branches, backing)?;
            let branches = d.u8_stream(n_branches, backing)?;
            let pcs = d.u32_stream(len, backing)?;
            let istalls = d.u8_stream(len, backing)?;
            let dlats = d.u8_stream(len, backing)?;
            // Structural consistency: the run index must tile the
            // record count, and every pc must index the timing table —
            // the invariants replay consumers rely on.
            let indexed: u64 =
                runs.iter().map(u64::from).sum::<u64>() + n_branches as u64 + u64::from(open_run);
            if indexed != len as u64 || pcs.iter().any(|pc| pc as usize >= timings.len()) {
                return None;
            }
            total += len as u64;
            let mut chunk =
                TraceChunk::from_raw_streams(pcs, istalls, dlats, branches, runs, open_run);
            // The on-disk format carries only the raw streams; the
            // derived request stream is recomputed on load.
            chunk.rebuild_breqs();
            chunks.push(chunk);
        }
        if d.pos != body.len() || total != instructions {
            return None;
        }
        Some(DynTrace {
            timings: timings.into_boxed_slice(),
            chunks,
            functional: TraceFunctional {
                instructions,
                outputs,
                prob_consumed,
                pbs,
            },
            pbs: config.pbs.clone(),
            emu: config.emu.clone(),
        })
    }
}

/// The classified outcome of loading a persisted trace — see
/// [`DynTrace::load_file`]. Each variant maps to a different recovery
/// in the self-healing store.
#[derive(Debug)]
pub enum TraceLoad {
    /// The file validated end to end; here is the trace.
    Loaded(DynTrace),
    /// No file under that path — an ordinary cold start; capture.
    Missing,
    /// The file is intact (digest passes) but was written for another
    /// format version or emulation key. Overwriting it is safe; the
    /// store counts these as `stale_rejected` re-captures.
    Stale,
    /// The file fails the digest, magic or structural validation —
    /// truncation, bit rot, a torn write. Retrying cannot help and
    /// overwriting hides the evidence: the store quarantines it.
    Corrupt,
    /// Opening or mapping the file failed for a reason other than
    /// absence — possibly transient; worth a bounded retry.
    Io(std::io::Error),
}

/// Reaps orphaned `*.tmp.<pid>.<n>` files in a trace directory —
/// leftovers of writers killed between temp-file creation and the
/// publishing rename, which nothing would otherwise ever delete.
/// Returns the number of files removed.
///
/// A temp file is *stale* when its embedded writer pid is not this
/// process (our own in-flight writers are never touched) and its
/// writer can no longer publish it. On Linux that is probed directly:
/// the pid no longer exists (`/proc/<pid>`). Other platforms have no
/// portable liveness probe, so a foreign temp is reaped only once it
/// is older than [`STALE_TEMP_AGE`] — a recent temp may belong to a
/// live writer mid-encode, and deleting it out from under them would
/// turn their publish into a spurious failure. (A dead writer's orphan
/// then lingers up to the age threshold, which costs bytes, not
/// correctness.) Published `trace-*.bin` files are never candidates.
pub fn sweep_stale_temps(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0usize;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(temp_writer_pid) else {
            continue;
        };
        if pid == std::process::id() || temp_in_use(&entry, pid) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

/// Quarantined corrupt traces older than this are reaped on store
/// open — long enough to diagnose a corruption incident, short enough
/// that the evidence never accumulates forever.
pub const QUARANTINE_MAX_AGE: std::time::Duration =
    std::time::Duration::from_secs(7 * 24 * 60 * 60);

/// At most this many quarantined files survive a sweep regardless of
/// age (the newest are kept): a pathologically flapping store cannot
/// fill the directory within the age window.
pub const QUARANTINE_KEEP: usize = 16;

/// Reaps old `*.quarantined` files in a trace directory — corrupt
/// traces [`quarantine`d](TraceLoad::Corrupt) aside as evidence, which
/// nothing would otherwise ever delete. Mirrors [`sweep_stale_temps`]:
/// called once on store open, returns the number of files removed.
///
/// A quarantined file is reaped once it is older than
/// [`QUARANTINE_MAX_AGE`]; independent of age, only the
/// [`QUARANTINE_KEEP`] newest files survive. A modification time in
/// the future (clock skew) reads as brand new, never as expired.
pub fn sweep_old_quarantined(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let now = std::time::SystemTime::now();
    let mut reaped = 0usize;
    let mut kept: Vec<(std::time::SystemTime, std::path::PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        if !name.to_str().is_some_and(|n| n.ends_with(".quarantined")) {
            continue;
        }
        // An unreadable mtime is treated as current: kept by age, but
        // still subject to the count bound below.
        let modified = entry.metadata().and_then(|m| m.modified()).unwrap_or(now);
        let expired = now
            .duration_since(modified)
            .is_ok_and(|age| age >= QUARANTINE_MAX_AGE);
        if expired {
            reaped += usize::from(std::fs::remove_file(entry.path()).is_ok());
        } else {
            kept.push((modified, entry.path()));
        }
    }
    if kept.len() > QUARANTINE_KEEP {
        // Oldest first; everything beyond the newest KEEP goes.
        kept.sort_by_key(|&(modified, _)| modified);
        for (_, path) in &kept[..kept.len() - QUARANTINE_KEEP] {
            reaped += usize::from(std::fs::remove_file(path).is_ok());
        }
    }
    reaped
}

/// On platforms without a pid-liveness probe, foreign temps younger
/// than this are presumed to have a live writer and survive the sweep.
#[cfg(any(not(target_os = "linux"), test))]
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(60 * 60);

/// Age-based staleness for foreign temps where liveness cannot be
/// probed: stale once `now - modified >= STALE_TEMP_AGE`. A `modified`
/// in the future (clock skew) reads as in-use, never as stale.
#[cfg(any(not(target_os = "linux"), test))]
fn is_stale_by_age(modified: std::time::SystemTime, now: std::time::SystemTime) -> bool {
    now.duration_since(modified)
        .is_ok_and(|age| age >= STALE_TEMP_AGE)
}

/// Whether a foreign writer's temp may still be published by its
/// owner. Linux probes the writer pid; elsewhere recency stands in for
/// liveness (an undatable temp is conservatively kept).
#[cfg(target_os = "linux")]
fn temp_in_use(_entry: &std::fs::DirEntry, pid: u32) -> bool {
    writer_alive(pid)
}

#[cfg(not(target_os = "linux"))]
fn temp_in_use(entry: &std::fs::DirEntry, _pid: u32) -> bool {
    match entry.metadata().and_then(|m| m.modified()) {
        Ok(modified) => !is_stale_by_age(modified, std::time::SystemTime::now()),
        Err(_) => true,
    }
}

/// The writer pid of a `*.tmp.<pid>.<n>` temp name, `None` for
/// anything else (published traces, unrelated files).
fn temp_writer_pid(name: &str) -> Option<u32> {
    let mut rev = name.rsplit('.');
    let seq = rev.next()?;
    let pid = rev.next()?;
    if rev.next()? != "tmp" {
        return None;
    }
    seq.parse::<u64>().ok()?;
    pid.parse::<u32>().ok()
}

/// Whether the process that owned a temp file still exists
/// (Linux-only: `/proc` is not portable even across unixes).
#[cfg(target_os = "linux")]
fn writer_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_replay, PredictorChoice};
    use probranch_isa::{CmpOp, ProgramBuilder, Reg};

    fn workload(iters: i64) -> probranch_isa::Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x243F6A8885A308D3u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 3) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.li(Reg::R9, 256);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.st(Reg::R7, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join);
        b.add(Reg::R3, Reg::R3, 1);
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("probranch-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn quarantine_sweep_is_age_and_count_bounded() {
        let dir = tempdir("quarantine-sweep");
        let seed = |name: &str, age: std::time::Duration| {
            let path = dir.join(name);
            std::fs::write(&path, b"corrupt evidence").unwrap();
            std::fs::File::options()
                .write(true)
                .open(&path)
                .unwrap()
                .set_modified(std::time::SystemTime::now() - age)
                .unwrap();
            path
        };
        // Two expired files, one fresh one, and one non-quarantine
        // bystander older than the age bound.
        let old_a = seed("trace-aaaa.bin.quarantined", QUARANTINE_MAX_AGE * 2);
        let old_b = seed(
            "trace-bbbb.bin.quarantined",
            QUARANTINE_MAX_AGE + std::time::Duration::from_secs(60),
        );
        let fresh = seed(
            "trace-cccc.bin.quarantined",
            std::time::Duration::from_secs(60),
        );
        let bystander = seed("trace-dddd.bin", QUARANTINE_MAX_AGE * 2);
        assert_eq!(sweep_old_quarantined(&dir), 2);
        assert!(!old_a.exists() && !old_b.exists());
        assert!(fresh.exists(), "recent quarantine files are evidence");
        assert!(bystander.exists(), "published traces are never touched");

        // Count bound: even brand-new files beyond the newest KEEP go.
        for i in 0..(QUARANTINE_KEEP + 5) {
            // Distinct mtimes so "newest" is well defined.
            seed(
                &format!("trace-{i:04x}.bin.quarantined"),
                std::time::Duration::from_secs(120 + i as u64),
            );
        }
        let total = QUARANTINE_KEEP + 5 + 1; // + the fresh survivor above
        assert_eq!(sweep_old_quarantined(&dir), total - QUARANTINE_KEEP);
        let left = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".quarantined"))
            })
            .count();
        assert_eq!(left, QUARANTINE_KEEP);
        assert!(fresh.exists(), "the newest files survive the count bound");
        // An empty/absent directory is a no-op.
        assert_eq!(sweep_old_quarantined(&dir.join("absent")), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_file_round_trips_byte_identically() {
        let cfg = SimConfig::default().with_pbs();
        let trace = DynTrace::capture(&workload(3000), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("roundtrip");
        let path = dir.join("trace.bin");
        trace.write_file(&path, hash).expect("write");
        let back = DynTrace::read_file(&path, hash, &cfg).expect("load");
        assert_eq!(back, trace, "persisted trace must round-trip exactly");
        // The load is zero-copy: every chunk borrows the file map (on
        // targets with a real mmap; elsewhere the owned fallback still
        // round-trips, it just reports unmapped).
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert_eq!(
            back.mapped_chunks(),
            back.chunk_count(),
            "a warm-start load must not copy record streams"
        );
        // The owned decode path agrees with the mapped one exactly.
        let owned = DynTrace::read_file_owned(&path, hash, &cfg).expect("owned load");
        assert_eq!(owned, back);
        assert_eq!(owned.mapped_chunks(), 0);
        // And the replay through the loaded trace is byte-identical.
        let timing_cfg = cfg.clone().predictor(PredictorChoice::Tournament);
        assert_eq!(
            simulate_replay(&back, &timing_cfg),
            simulate_replay(&trace, &timing_cfg)
        );
        assert_eq!(
            simulate_replay(&owned, &timing_cfg),
            simulate_replay(&trace, &timing_cfg)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_or_corrupt_files_are_rejected_not_misread() {
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&workload(500), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("corrupt");
        let path = dir.join("trace.bin");
        trace.write_file(&path, hash).expect("write");

        // Wrong content hash (a stale file for a different key).
        assert!(DynTrace::read_file(&path, hash ^ 1, &cfg).is_none());
        // Missing file.
        assert!(DynTrace::read_file(&dir.join("absent.bin"), hash, &cfg).is_none());

        let pristine = std::fs::read(&path).unwrap();
        // Truncations at every region boundary-ish size — against both
        // the mapped and the owned reader.
        for cut in [0, 7, 16, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                DynTrace::read_file(&path, hash, &cfg).is_none(),
                "truncated at {cut}"
            );
            assert!(
                DynTrace::read_file_owned(&path, hash, &cfg).is_none(),
                "owned reader accepted truncation at {cut}"
            );
        }
        // Single flipped bits across the file (magic, header, streams,
        // digest).
        for pos in [0, 9, 13, 21, pristine.len() / 3, pristine.len() - 3] {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                DynTrace::read_file(&path, hash, &cfg).is_none(),
                "bit flip at {pos}"
            );
            assert!(
                DynTrace::read_file_owned(&path, hash, &cfg).is_none(),
                "owned reader accepted bit flip at {pos}"
            );
        }
        // A different format version (v1 files in particular: same byte
        // layout, retired when the mapped reader landed).
        let mut bad = pristine.clone();
        bad[8] = bad[8].wrapping_add(1);
        std::fs::write(&path, &bad).unwrap();
        assert!(DynTrace::read_file(&path, hash, &cfg).is_none());
        let mut v1 = pristine.clone();
        v1[8] = 1;
        std::fs::write(&path, &v1).unwrap();
        assert!(DynTrace::read_file(&path, hash, &cfg).is_none());

        // The pristine bytes still load.
        std::fs::write(&path, &pristine).unwrap();
        assert_eq!(DynTrace::read_file(&path, hash, &cfg).unwrap(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_separates_emulation_keys_only() {
        let base = SimConfig::default();
        let pbs = SimConfig::default().with_pbs();
        assert_ne!(base.emu_key_fingerprint(), pbs.emu_key_fingerprint());
        // Timing-side fields must not affect the fingerprint…
        let mut timing_only = base.clone().predictor(PredictorChoice::Tournament);
        timing_only.filter_prob_from_predictor = true;
        timing_only.collect_branch_trace = true;
        assert_eq!(
            base.emu_key_fingerprint(),
            timing_only.emu_key_fingerprint()
        );
        // …while every key field does.
        let mut budget = base.clone();
        budget.max_insts += 1;
        assert_ne!(base.emu_key_fingerprint(), budget.emu_key_fingerprint());
        let mut mem = base.clone();
        mem.emu.mem_words *= 2;
        assert_ne!(base.emu_key_fingerprint(), mem.emu_key_fingerprint());
    }

    #[test]
    fn stale_writer_temps_are_swept_but_live_files_survive() {
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&workload(200), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("sweep");
        let live = dir.join("trace-0000000000000abc.bin");
        trace.write_file(&live, hash).expect("write");
        // Orphans from two dead writers (no live process ever gets pid
        // u32::MAX - k: Linux pids are capped far below), plus one from
        // "our own" in-flight writer and one unrelated file.
        let dead_a = dir.join("trace-0000000000000abc.tmp.4294967294.0");
        let dead_b = dir.join("trace-00000000000000ff.tmp.4294967293.17");
        let ours = dir.join(format!(
            "trace-0000000000000abc.tmp.{}.99",
            std::process::id()
        ));
        let unrelated = dir.join("notes.txt");
        for p in [&dead_a, &dead_b, &ours, &unrelated] {
            std::fs::write(p, b"half-written junk").unwrap();
        }
        assert_eq!(sweep_stale_temps(&dir), 2, "exactly the dead-writer temps");
        assert!(!dead_a.exists() && !dead_b.exists());
        assert!(ours.exists(), "own in-flight temps must survive");
        assert!(unrelated.exists(), "non-temp files must survive");
        assert!(live.exists());
        // The published trace still loads after the sweep.
        assert_eq!(DynTrace::read_file(&live, hash, &cfg).unwrap(), trace);
        // Sweeping an absent directory is a no-op, not an error.
        assert_eq!(sweep_stale_temps(&dir.join("absent")), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_failures_classify_stale_vs_corrupt() {
        let cfg = SimConfig::default();
        let trace = DynTrace::capture(&workload(500), &cfg).unwrap();
        let hash = cfg.emu_key_fingerprint();
        let dir = tempdir("classify");
        let path = dir.join("trace.bin");
        trace.write_file(&path, hash).expect("write");
        let pristine = std::fs::read(&path).unwrap();

        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 0),
            TraceLoad::Loaded(_)
        ));
        assert!(matches!(
            DynTrace::load_file(&dir.join("absent.bin"), hash, &cfg, 0),
            TraceLoad::Missing
        ));
        // An intact file for another emulation key is stale, not corrupt.
        assert!(matches!(
            DynTrace::load_file(&path, hash ^ 1, &cfg, 0),
            TraceLoad::Stale
        ));
        // An intact file of another format version is stale — but only
        // when re-digested; a raw version flip breaks the digest and
        // must read as corruption (the field can't be trusted).
        let mut flipped = pristine.clone();
        flipped[8] = 1;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 0),
            TraceLoad::Corrupt
        ));
        let body_end = flipped.len() - 8;
        let d = digest(&flipped[..body_end]);
        flipped[body_end..].copy_from_slice(&d.to_le_bytes());
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 0),
            TraceLoad::Stale
        ));
        // Truncations and empty files are corrupt.
        for cut in [0, 7, 16, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(
                matches!(
                    DynTrace::load_file(&path, hash, &cfg, 0),
                    TraceLoad::Corrupt
                ),
                "truncation at {cut} must classify corrupt"
            );
        }
        // Arbitrary junk is corrupt.
        std::fs::write(&path, b"definitely not a trace file, ever").unwrap();
        assert!(matches!(
            DynTrace::load_file(&path, hash, &cfg, 0),
            TraceLoad::Corrupt
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn age_based_staleness_is_conservative() {
        use std::time::{Duration, SystemTime};
        let now = SystemTime::now();
        let fresh = now - Duration::from_secs(30);
        let old = now - (STALE_TEMP_AGE + Duration::from_secs(1));
        let boundary = now - STALE_TEMP_AGE;
        let future = now + Duration::from_secs(300);
        assert!(!is_stale_by_age(fresh, now), "recent temps must survive");
        assert!(is_stale_by_age(old, now));
        assert!(is_stale_by_age(boundary, now), "threshold is inclusive");
        assert!(
            !is_stale_by_age(future, now),
            "clock skew must read as in-use, never stale"
        );
    }

    #[test]
    fn streamed_digest_matches_one_shot_for_any_split() {
        let data: Vec<u8> = (0..1021u32).flat_map(|i| i.to_le_bytes()).collect();
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, data.len()] {
            let bytes = &data[..len];
            let expect = digest(bytes);
            for split in [0usize, 1, 3, 5, 8, 13, len / 2, len] {
                let split = split.min(len);
                let mut d = StreamDigest::new(len as u64);
                d.update(&bytes[..split]);
                // Second half in deliberately awkward 3-byte dribbles.
                for piece in bytes[split..].chunks(3) {
                    d.update(piece);
                }
                assert_eq!(d.finish(), expect, "len {len}, split {split}");
            }
        }
    }
}
