//! Cooperative cancellation for long-running simulation work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle (an `Arc` around an
//! atomic flag plus an optional hard deadline) that a driver hands to
//! in-flight work. The pipeline's chunk loops — trace capture, convoy
//! streaming, replay drains, and the fused/reference batch loops —
//! poll the token between chunks (or every ~64 Ki instructions for the
//! chunkless engines), so a cancelled cell stops within one chunk of
//! work instead of running to completion. Cancellation surfaces as
//! [`EmuError::Cancelled`], which propagates through the same error
//! paths as any emulator fault and therefore participates in the
//! harness's retry/degradation cascade unchanged.
//!
//! Tokens are delivered to the pipeline through a thread-local scope
//! rather than threaded through every simulation signature:
//! [`CancelScope::enter`] installs a token for the current thread (and
//! restores the previous one on drop), and [`check_current`] is the
//! poll the hot loops call. With no scope installed the poll is a
//! single thread-local read that always succeeds, so unsupervised
//! callers pay ~nothing.
//!
//! Tokens form a parent/child tree: a request-level token (carrying
//! the request deadline) parents the per-attempt tokens the supervisor
//! mints (carrying the per-cell deadline), and cancelling the parent
//! cancels every child.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::machine::EmuError;

/// Cancellation poll cadence of the chunkless hot loops (the fused
/// batch loop and block-compiled capture): cheap relative to ~64 Ki
/// instructions of work, frequent enough that a cancelled cell stops
/// within one trace chunk's worth of instructions.
pub(crate) const CANCEL_STRIDE: u64 = 1 << 16;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Set once, by whoever cancels first; read for the error message.
    reason: Mutex<Option<String>>,
    /// Hard deadline: `(fires_at, budget)` — the budget is kept only
    /// for the "deadline exceeded (250ms)" message.
    deadline: Option<(Instant, Duration)>,
    parent: Option<CancelToken>,
}

/// A cloneable cancellation handle. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](CancelToken::cancel)
    /// is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally self-cancels `budget` from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some((Instant::now() + budget, budget)),
                ..Inner::default()
            }),
        }
    }

    /// A child of this token: cancelled when the parent is, with an
    /// optional deadline of its own (`budget` from now).
    pub fn child(&self, budget: Option<Duration>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: budget.map(|b| (Instant::now() + b, b)),
                parent: Some(self.clone()),
                ..Inner::default()
            }),
        }
    }

    /// Cancels the token (and, transitively, every child). The first
    /// caller's `reason` wins and becomes the [`EmuError::Cancelled`]
    /// message.
    pub fn cancel(&self, reason: &str) {
        let mut guard = self
            .inner
            .reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            *guard = Some(reason.to_string());
        }
        drop(guard);
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token is cancelled — explicitly, by an ancestor, or
    /// by its deadline having passed (which latches the flag and the
    /// reason on first observation).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some((at, budget)) = self.inner.deadline {
            if Instant::now() >= at {
                self.cancel(&format!("deadline exceeded ({budget:?})"));
                return true;
            }
        }
        match &self.inner.parent {
            Some(p) if p.is_cancelled() => {
                self.cancel(&p.reason());
                true
            }
            _ => false,
        }
    }

    /// Whether this token's own deadline (not an ancestor's) has
    /// passed. Used by the supervisor to flag over-deadline cells even
    /// when the body completed without ever polling.
    pub fn deadline_passed(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|(at, _)| Instant::now() >= at)
    }

    /// The cancellation reason (empty string when not cancelled).
    pub fn reason(&self) -> String {
        self.inner
            .reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
            .unwrap_or_default()
    }

    /// `Ok(())` while live; [`EmuError::Cancelled`] once cancelled.
    ///
    /// # Errors
    ///
    /// [`EmuError::Cancelled`] carrying the cancellation reason.
    pub fn check(&self) -> Result<(), EmuError> {
        if self.is_cancelled() {
            return Err(EmuError::Cancelled {
                reason: self.reason(),
            });
        }
        Ok(())
    }
}

thread_local! {
    /// The token the pipeline loops on this thread poll, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// RAII guard installing a token as the current thread's cancellation
/// scope; the previous scope (if any) is restored on drop, so scopes
/// nest.
#[derive(Debug)]
pub struct CancelScope {
    prev: Option<CancelToken>,
}

impl CancelScope {
    /// Installs `token` for the current thread until the guard drops.
    pub fn enter(token: CancelToken) -> CancelScope {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
        CancelScope { prev }
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// The current thread's token, if a [`CancelScope`] is active.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The poll the pipeline's chunk loops call: `Ok(())` when no scope is
/// installed or the scope's token is live, [`EmuError::Cancelled`]
/// otherwise.
///
/// # Errors
///
/// [`EmuError::Cancelled`] when the installed token is cancelled.
pub fn check_current() -> Result<(), EmuError> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(token) => token.check(),
        None => Ok(()),
    })
}

/// The `cancel.spurious` failpoint: rolls the installed fault plan and,
/// on a hit, cancels the current scope's token with a reason naming the
/// injected site — so torture runs exercise the cancellation path and
/// the structured-error contract still attributes the failure to an
/// injected fault. A no-op without an active scope or armed plan.
pub fn inject_spurious(salt: &[u64]) {
    if probranch_faults::injected(probranch_faults::Site::CancelSpurious, salt) {
        if let Some(token) = current() {
            token.cancel("injected fault: cancel.spurious");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_live_and_cancel_latches_a_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        t.cancel("first");
        t.cancel("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), "first");
        assert_eq!(
            t.check(),
            Err(EmuError::Cancelled {
                reason: "first".into()
            })
        );
    }

    #[test]
    fn deadlines_latch_and_name_the_budget() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled());
        assert!(t.deadline_passed());
        assert!(t.reason().contains("deadline exceeded"));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled() && !far.deadline_passed());
    }

    #[test]
    fn children_inherit_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child(None);
        assert!(!child.is_cancelled());
        parent.cancel("parent gone");
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), "parent gone");
        // A child deadline does not cancel the parent.
        let strict_child = parent.child(Some(Duration::from_secs(3600)));
        assert!(strict_child.is_cancelled(), "parent already cancelled");
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(current().is_none());
        assert!(check_current().is_ok());
        let outer = CancelToken::new();
        let _a = CancelScope::enter(outer.clone());
        {
            let inner = CancelToken::new();
            let _b = CancelScope::enter(inner.clone());
            inner.cancel("inner");
            assert!(check_current().is_err());
        }
        // Back to the outer scope, which is still live.
        assert!(check_current().is_ok());
        outer.cancel("outer");
        assert!(check_current().is_err());
        drop(_a);
        assert!(current().is_none());
    }
}
