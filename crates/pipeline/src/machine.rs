//! The functional emulator: executes `probranch` programs instruction by
//! instruction, drives the PBS unit, and streams [`DynInst`] records into
//! the timing model.

use std::error::Error;
use std::fmt;

use probranch_core::{BranchResolution, PbsStats, PbsUnit};
use probranch_isa::{AluOp, CmpOp, FpBinOp, FpUnOp, Inst, Operand, Program, Reg};

use crate::decode::{DecOp, DecodedProgram};

/// Emulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuConfig {
    /// Data-memory size in 64-bit words (byte-addressed, 8-aligned).
    pub mem_words: usize,
    /// Maximum call-stack depth before a fault.
    pub max_call_depth: usize,
}

impl Default for EmuConfig {
    fn default() -> EmuConfig {
        EmuConfig {
            mem_words: 1 << 20,
            max_call_depth: 1024,
        }
    }
}

/// Runtime faults. Validated programs on well-formed workloads never
/// fault; faults indicate a workload authoring bug.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmuError {
    /// Unaligned or out-of-bounds data access.
    MemoryFault {
        /// Faulting byte address.
        addr: u64,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// Call-stack overflow.
    CallStackOverflow {
        /// PC of the call.
        pc: u32,
    },
    /// Return with an empty call stack.
    CallStackUnderflow {
        /// PC of the return.
        pc: u32,
    },
    /// `run_to_halt` exceeded its instruction budget.
    InstLimitExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// A deterministic fault-injection failpoint fired (torture runs
    /// only; never occurs without an installed fault plan).
    InjectedFault {
        /// The failpoint site name (e.g. `capture`).
        site: &'static str,
    },
    /// The run was cooperatively cancelled via a
    /// [`CancelToken`](crate::cancel::CancelToken) — a hard deadline
    /// expired, a service request was dropped, or a spurious-cancel
    /// failpoint fired.
    Cancelled {
        /// Why the token was cancelled (e.g. `deadline exceeded (250ms)`).
        reason: String,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::MemoryFault { addr, pc } => {
                write!(f, "memory fault at address {addr:#x} (pc {pc})")
            }
            EmuError::CallStackOverflow { pc } => write!(f, "call stack overflow (pc {pc})"),
            EmuError::CallStackUnderflow { pc } => {
                write!(f, "return with empty call stack (pc {pc})")
            }
            EmuError::InstLimitExceeded { limit } => {
                write!(f, "instruction limit of {limit} exceeded")
            }
            EmuError::InjectedFault { site } => write!(f, "injected fault: {site}"),
            EmuError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
        }
    }
}

impl Error for EmuError {}

/// How a dynamic branch was resolved, for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchEventKind {
    /// A conditional branch whose direction the predictor must guess.
    Conditional,
    /// A PBS-directed probabilistic branch: direction known at fetch, no
    /// predictor access, never mispredicts.
    PbsDirected,
    /// Direct unconditional jump (target known at fetch).
    Unconditional,
    /// A call (target known at fetch; pushes the return-address stack).
    Call,
    /// A return (perfectly predicted by the return-address stack model).
    Ret,
}

/// A dynamic branch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Actual direction.
    pub taken: bool,
    /// Resolution kind.
    pub kind: BranchEventKind,
    /// Whether the static instruction is probabilistic (`PROB_JMP`).
    pub is_prob: bool,
}

/// One element of the dynamic instruction stream consumed by the timing
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// PC of the instruction.
    pub pc: u32,
    /// The static instruction.
    pub inst: Inst,
    /// Branch resolution, for control instructions.
    pub branch: Option<BranchEvent>,
    /// Data address, for loads and stores.
    pub mem_addr: Option<u64>,
}

/// One element of the compact dynamic stream produced by the fused
/// engine ([`Emulator::step_block`]): just the facts the timing model
/// needs, with the static instruction looked up by `pc` in the shared
/// [`DecodedProgram`] instead of being copied per dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// PC of the instruction.
    pub pc: u32,
    /// Branch resolution, for control instructions.
    pub branch: Option<BranchEvent>,
    /// Data address for loads/stores, with `u64::MAX` as the "none"
    /// sentinel — keeps the record at 16 bytes (a `Option<u64>` would
    /// double the field). Read through [`StepRecord::mem_addr`].
    mem_addr: u64,
}

impl StepRecord {
    /// Sentinel for "no data address" (unreachable as a real address:
    /// data addresses are word-aligned indices into bounded memory).
    const NO_ADDR: u64 = u64::MAX;

    /// Data address, for loads and stores.
    #[inline]
    pub fn mem_addr(&self) -> Option<u64> {
        if self.mem_addr == Self::NO_ADDR {
            None
        } else {
            Some(self.mem_addr)
        }
    }
}

#[derive(Debug, Clone, Default)]
struct PendingProb {
    /// `(register, newly generated value)` in instruction order. The
    /// vector is a persistent scratch buffer: cleared and refilled per
    /// probabilistic branch, never reallocated in steady state.
    values: Vec<(Reg, u64)>,
    const_val: u64,
    /// Outcome of the comparison on the *new* value.
    outcome: bool,
}

/// Output channels as a dense, port-indexed table: iteration order is
/// structurally ascending-by-port rather than hash-order-by-luck, and
/// the hot `out` path is a bounds-checked index instead of a hash probe.
#[derive(Debug, Clone, Default)]
struct PortTable {
    lanes: Vec<Vec<u64>>,
}

impl PortTable {
    #[inline]
    fn push(&mut self, port: u16, value: u64) {
        let i = port as usize;
        if i >= self.lanes.len() {
            self.lanes.resize_with(i + 1, Vec::new);
        }
        self.lanes[i].push(value);
    }

    fn get(&self, port: u16) -> &[u64] {
        self.lanes.get(port as usize).map_or(&[], |v| v.as_slice())
    }

    /// Non-empty ports in ascending port order.
    fn sorted(&self) -> Vec<(u16, Vec<u64>)> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(p, v)| (p as u16, v.clone()))
            .collect()
    }
}

/// Integer ALU datapath, shared verbatim by the reference and the
/// decoded interpreters so they cannot drift apart.
#[inline]
pub(crate) fn alu_eval(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Sar => ((a as i64) >> (b & 63)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
    }
}

/// FP two-source datapath, shared by both interpreters.
#[inline]
pub(crate) fn fp_bin_eval(op: FpBinOp, a: f64, b: f64) -> f64 {
    match op {
        FpBinOp::Add => a + b,
        FpBinOp::Sub => a - b,
        FpBinOp::Mul => a * b,
        FpBinOp::Div => a / b,
        FpBinOp::Min => a.min(b),
        FpBinOp::Max => a.max(b),
    }
}

/// FP one-source datapath, shared by both interpreters.
#[inline]
fn fp_un_eval(op: FpUnOp, a: f64) -> f64 {
    match op {
        FpUnOp::Neg => -a,
        FpUnOp::Abs => a.abs(),
        FpUnOp::Sqrt => a.sqrt(),
        FpUnOp::Exp => a.exp(),
        FpUnOp::Ln => a.ln(),
        FpUnOp::Sin => a.sin(),
        FpUnOp::Cos => a.cos(),
        FpUnOp::Floor => a.floor(),
    }
}

/// The functional emulator.
///
/// ```
/// use probranch_isa::{ProgramBuilder, Reg};
/// use probranch_pipeline::Emulator;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 21).add(Reg::R1, Reg::R1, Reg::R1).out(Reg::R1, 0).halt();
/// let mut emu = Emulator::new(b.build()?, Default::default());
/// emu.run_to_halt(100)?;
/// assert_eq!(emu.output(0), &[42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Emulator {
    program: Program,
    /// The program lowered once at construction; [`Emulator::step_decoded`]
    /// executes from this form.
    decoded: DecodedProgram,
    config: EmuConfig,
    regs: [u64; 32],
    flag: bool,
    pc: u32,
    halted: bool,
    memory: Vec<u64>,
    call_stack: Vec<u32>,
    outputs: PortTable,
    pbs: Option<PbsUnit>,
    pending_prob: PendingProb,
    /// Scratch for [`Emulator::resolve_prob_jump`]: the newly generated
    /// values handed to the PBS unit, reused across branches.
    prob_vals_scratch: Vec<u64>,
    /// Probabilistic values in the order the algorithm consumed them
    /// (swapped-in values for PBS-directed instances) — the stream the
    /// paper feeds to DieHarder in Table III.
    prob_consumed: Vec<u64>,
    executed: u64,
}

impl Emulator {
    /// Creates an emulator without PBS hardware: probabilistic
    /// instructions degrade to their regular counterparts, exactly like
    /// the paper's backward-compatible legacy machine.
    pub fn new(program: Program, config: EmuConfig) -> Emulator {
        Emulator {
            decoded: DecodedProgram::of(&program),
            regs: [0; 32],
            flag: false,
            pc: 0,
            halted: false,
            memory: vec![0; config.mem_words],
            call_stack: Vec::new(),
            outputs: PortTable::default(),
            pbs: None,
            pending_prob: PendingProb::default(),
            prob_vals_scratch: Vec::new(),
            prob_consumed: Vec::new(),
            executed: 0,
            program,
            config,
        }
    }

    /// Creates an emulator with a PBS unit attached.
    pub fn with_pbs(program: Program, config: EmuConfig, pbs: PbsUnit) -> Emulator {
        let mut e = Emulator::new(program, config);
        e.pbs = Some(pbs);
        e
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (for pre-run argument setup).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Reads the register as an `f64` bit pattern.
    pub fn reg_f64(&self, r: Reg) -> f64 {
        f64::from_bits(self.regs[r.index()])
    }

    /// The values emitted on `port` so far.
    pub fn output(&self, port: u16) -> &[u64] {
        self.outputs.get(port)
    }

    /// All non-empty output ports with their value streams, in ascending
    /// port order (structurally deterministic — no hash iteration).
    pub fn outputs_sorted(&self) -> Vec<(u16, Vec<u64>)> {
        self.outputs.sorted()
    }

    /// The predecoded form of the program (lowered once at
    /// construction), shared with the timing model by the fused engine.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }

    /// The values emitted on `port`, reinterpreted as doubles.
    pub fn output_f64(&self, port: u16) -> Vec<f64> {
        self.output(port)
            .iter()
            .map(|&v| f64::from_bits(v))
            .collect()
    }

    /// The probabilistic values in consumption order (see the paper's
    /// Table III randomness experiment).
    pub fn prob_consumed(&self) -> &[u64] {
        &self.prob_consumed
    }

    /// Whether the machine has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// PBS statistics, if a unit is attached.
    pub fn pbs_stats(&self) -> Option<PbsStats> {
        self.pbs.as_ref().map(|p| p.stats())
    }

    /// Direct word access to data memory (for test setup/inspection).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds.
    pub fn mem_word(&self, word: usize) -> u64 {
        self.memory[word]
    }

    /// Writes a data-memory word (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds.
    pub fn set_mem_word(&mut self, word: usize, value: u64) {
        self.memory[word] = value;
    }

    #[inline]
    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v as u64,
        }
    }

    #[inline]
    fn eval_cmp(&self, op: CmpOp, fp: bool, lhs: u64, rhs: u64) -> bool {
        if fp {
            op.eval_fp(f64::from_bits(lhs), f64::from_bits(rhs))
        } else {
            op.eval_int(lhs as i64, rhs as i64)
        }
    }

    #[inline]
    fn mem_index(&self, base: Reg, offset: i64, pc: u32) -> Result<usize, EmuError> {
        let addr = self.regs[base.index()].wrapping_add(offset as u64);
        if addr % 8 != 0 || (addr / 8) as usize >= self.memory.len() {
            return Err(EmuError::MemoryFault { addr, pc });
        }
        Ok((addr / 8) as usize)
    }

    fn observe_control(&mut self, pc: u32, inst: &Inst, taken: bool) {
        if let Some(pbs) = self.pbs.as_mut() {
            match inst {
                Inst::Call { .. } => pbs.observe_call(pc),
                Inst::Ret => pbs.observe_ret(),
                _ => {
                    if let Some(target) = inst.target() {
                        pbs.observe_branch(pc, target, taken);
                    }
                }
            }
        }
    }

    /// Executes one instruction, returning its dynamic record, or `None`
    /// if the machine is halted.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on memory faults and call-stack misuse;
    /// the machine halts on error.
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc);
        let mut next_pc = pc + 1;
        let mut branch = None;
        let mut mem_addr = None;

        match inst {
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = self.regs[src1.index()];
                let b = self.operand(src2);
                self.regs[dst.index()] = alu_eval(op, a, b);
            }
            Inst::Li { dst, imm } => self.regs[dst.index()] = imm,
            Inst::Mov { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            Inst::FpBin {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = f64::from_bits(self.regs[src1.index()]);
                let b = f64::from_bits(self.regs[src2.index()]);
                self.regs[dst.index()] = fp_bin_eval(op, a, b).to_bits();
            }
            Inst::FpUn { op, dst, src } => {
                let a = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = fp_un_eval(op, a).to_bits();
            }
            Inst::IntToFp { dst, src } => {
                self.regs[dst.index()] = (self.regs[src.index()] as i64 as f64).to_bits();
            }
            Inst::FpToInt { dst, src } => {
                let v = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = (v as i64) as u64;
            }
            Inst::CMov {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                self.regs[dst.index()] = if self.regs[cond.index()] != 0 {
                    self.regs[if_true.index()]
                } else {
                    self.regs[if_false.index()]
                };
            }
            Inst::Load { dst, base, offset } => {
                let idx = self
                    .mem_index(base, offset, pc)
                    .inspect_err(|_| self.halted = true)?;
                mem_addr = Some(idx as u64 * 8);
                self.regs[dst.index()] = self.memory[idx];
            }
            Inst::Store { src, base, offset } => {
                let idx = self
                    .mem_index(base, offset, pc)
                    .inspect_err(|_| self.halted = true)?;
                mem_addr = Some(idx as u64 * 8);
                self.memory[idx] = self.regs[src.index()];
            }
            Inst::Cmp { op, fp, lhs, rhs } => {
                self.flag = self.eval_cmp(op, fp, self.regs[lhs.index()], self.operand(rhs));
            }
            Inst::Jf { target } => {
                let taken = self.flag;
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind: BranchEventKind::Conditional,
                    is_prob: false,
                });
                self.observe_control(pc, &inst, taken);
            }
            Inst::Br {
                op,
                fp,
                lhs,
                rhs,
                target,
            } => {
                let taken = self.eval_cmp(op, fp, self.regs[lhs.index()], self.operand(rhs));
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind: BranchEventKind::Conditional,
                    is_prob: false,
                });
                self.observe_control(pc, &inst, taken);
            }
            Inst::Jmp { target } => {
                next_pc = target;
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Unconditional,
                    is_prob: false,
                });
                self.observe_control(pc, &inst, true);
            }
            Inst::Call { target } => {
                if self.call_stack.len() >= self.config.max_call_depth {
                    self.halted = true;
                    return Err(EmuError::CallStackOverflow { pc });
                }
                self.call_stack.push(pc + 1);
                next_pc = target;
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Call,
                    is_prob: false,
                });
                self.observe_control(pc, &inst, true);
            }
            Inst::Ret => {
                match self.call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    None => {
                        self.halted = true;
                        return Err(EmuError::CallStackUnderflow { pc });
                    }
                }
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Ret,
                    is_prob: false,
                });
                self.observe_control(pc, &inst, true);
            }
            Inst::ProbCmp { op, fp, prob, rhs } => {
                let value = self.regs[prob.index()];
                let const_val = self.operand(rhs);
                let outcome = self.eval_cmp(op, fp, value, const_val);
                self.flag = outcome;
                if self.pbs.is_some() {
                    self.pending_prob.values.clear();
                    self.pending_prob.values.push((prob, value));
                    self.pending_prob.const_val = const_val;
                    self.pending_prob.outcome = outcome;
                }
                // Without PBS hardware this is exactly a `cmp` (legacy
                // decode), and `pending_prob` stays unused.
            }
            Inst::ProbJmp { prob, target } => {
                if let Some(p) = prob {
                    let v = self.regs[p.index()];
                    if self.pbs.is_some() {
                        self.pending_prob.values.push((p, v));
                    }
                }
                match target {
                    None => {
                        // Intermediate PROB_JMP: registers one more value,
                        // transfers no control.
                    }
                    Some(target) => {
                        let (taken, kind) = self.resolve_prob_jump(pc);
                        if taken {
                            next_pc = target;
                        }
                        branch = Some(BranchEvent {
                            taken,
                            kind,
                            is_prob: true,
                        });
                        self.observe_control(pc, &inst, taken);
                    }
                }
            }
            Inst::Out { src, port } => {
                self.outputs.push(port, self.regs[src.index()]);
            }
            Inst::Halt => {
                self.halted = true;
            }
            Inst::Nop => {}
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(Some(DynInst {
            pc,
            inst,
            branch,
            mem_addr,
        }))
    }

    /// Resolves the jumping `PROB_JMP` at `pc` through the PBS unit (or
    /// as a plain flag jump on a legacy machine).
    ///
    /// Allocation-free in steady state: the pending-value list and the
    /// value slice handed to the PBS unit are persistent scratch buffers
    /// cleared per branch, not rebuilt per branch.
    fn resolve_prob_jump(&mut self, pc: u32) -> (bool, BranchEventKind) {
        // Split borrows: the PBS unit takes the scratch slice while the
        // register file and consumption log are written independently.
        let Emulator {
            pbs,
            pending_prob,
            prob_vals_scratch,
            regs,
            prob_consumed,
            flag,
            ..
        } = self;
        let Some(pbs) = pbs.as_mut() else {
            return (*flag, BranchEventKind::Conditional);
        };
        prob_vals_scratch.clear();
        prob_vals_scratch.extend(pending_prob.values.iter().map(|&(_, v)| v));
        let resolution = pbs.execute_prob_branch(
            pc,
            prob_vals_scratch,
            pending_prob.const_val,
            pending_prob.outcome,
        );
        let out = match resolution {
            BranchResolution::Directed { taken, swapped } => {
                // The execute stage swaps the newly generated values with
                // the recorded ones matching the followed direction.
                for (&(reg, _), &old) in pending_prob.values.iter().zip(&swapped) {
                    regs[reg.index()] = old;
                    prob_consumed.push(old);
                }
                // Hand the spent buffer back so the steady-state PBS
                // path allocates nothing.
                pbs.recycle(swapped);
                (taken, BranchEventKind::PbsDirected)
            }
            BranchResolution::Bootstrap { taken } | BranchResolution::Bypassed { taken, .. } => {
                for &(_, v) in &pending_prob.values {
                    prob_consumed.push(v);
                }
                (taken, BranchEventKind::Conditional)
            }
        };
        pending_prob.values.clear();
        out
    }

    /// Executes one instruction from the predecoded form, returning a
    /// compact [`StepRecord`], or `None` if the machine is halted.
    ///
    /// Architecturally identical to [`Emulator::step`] — the golden-trace
    /// and engine-equivalence suites lock the two interpreters together —
    /// but monomorphic over [`DecOp`]: no nested operand dispatch and no
    /// per-instruction [`Inst`] copy into a [`DynInst`].
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on memory faults and call-stack misuse;
    /// the machine halts on error.
    #[inline(always)]
    pub fn step_decoded(&mut self) -> Result<Option<StepRecord>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let op = self.decoded.fetch(pc).op;
        let mut next_pc = pc + 1;
        let mut branch = None;
        let mut mem_addr = StepRecord::NO_ADDR;

        match op {
            DecOp::AluRR {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = self.regs[src1.index()];
                let b = self.regs[src2.index()];
                self.regs[dst.index()] = alu_eval(op, a, b);
            }
            DecOp::AluRI { op, dst, src1, imm } => {
                let a = self.regs[src1.index()];
                self.regs[dst.index()] = alu_eval(op, a, imm);
            }
            DecOp::Li { dst, imm } => self.regs[dst.index()] = imm,
            DecOp::Mov { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            DecOp::FpBin {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = f64::from_bits(self.regs[src1.index()]);
                let b = f64::from_bits(self.regs[src2.index()]);
                self.regs[dst.index()] = fp_bin_eval(op, a, b).to_bits();
            }
            DecOp::FpUn { op, dst, src } => {
                let a = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = fp_un_eval(op, a).to_bits();
            }
            DecOp::IntToFp { dst, src } => {
                self.regs[dst.index()] = (self.regs[src.index()] as i64 as f64).to_bits();
            }
            DecOp::FpToInt { dst, src } => {
                let v = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = (v as i64) as u64;
            }
            DecOp::CMov {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                self.regs[dst.index()] = if self.regs[cond.index()] != 0 {
                    self.regs[if_true.index()]
                } else {
                    self.regs[if_false.index()]
                };
            }
            DecOp::Load { dst, base, offset } => {
                let idx = self
                    .mem_index(base, offset, pc)
                    .inspect_err(|_| self.halted = true)?;
                mem_addr = idx as u64 * 8;
                self.regs[dst.index()] = self.memory[idx];
            }
            DecOp::Store { src, base, offset } => {
                let idx = self
                    .mem_index(base, offset, pc)
                    .inspect_err(|_| self.halted = true)?;
                mem_addr = idx as u64 * 8;
                self.memory[idx] = self.regs[src.index()];
            }
            DecOp::CmpRR { op, fp, lhs, rhs } => {
                self.flag = self.eval_cmp(op, fp, self.regs[lhs.index()], self.regs[rhs.index()]);
            }
            DecOp::CmpRI { op, fp, lhs, imm } => {
                self.flag = self.eval_cmp(op, fp, self.regs[lhs.index()], imm);
            }
            DecOp::Jf { target } => {
                let taken = self.flag;
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind: BranchEventKind::Conditional,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_branch(pc, target, taken);
                }
            }
            DecOp::BrRR {
                op,
                fp,
                lhs,
                rhs,
                target,
            } => {
                let taken = self.eval_cmp(op, fp, self.regs[lhs.index()], self.regs[rhs.index()]);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind: BranchEventKind::Conditional,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_branch(pc, target, taken);
                }
            }
            DecOp::BrRI {
                op,
                fp,
                lhs,
                imm,
                target,
            } => {
                let taken = self.eval_cmp(op, fp, self.regs[lhs.index()], imm);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind: BranchEventKind::Conditional,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_branch(pc, target, taken);
                }
            }
            DecOp::Jmp { target } => {
                next_pc = target;
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Unconditional,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_branch(pc, target, true);
                }
            }
            DecOp::Call { target } => {
                if self.call_stack.len() >= self.config.max_call_depth {
                    self.halted = true;
                    return Err(EmuError::CallStackOverflow { pc });
                }
                self.call_stack.push(pc + 1);
                next_pc = target;
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Call,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_call(pc);
                }
            }
            DecOp::Ret => {
                match self.call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    None => {
                        self.halted = true;
                        return Err(EmuError::CallStackUnderflow { pc });
                    }
                }
                branch = Some(BranchEvent {
                    taken: true,
                    kind: BranchEventKind::Ret,
                    is_prob: false,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_ret();
                }
            }
            DecOp::ProbCmpRR { op, fp, prob, rhs } => {
                let value = self.regs[prob.index()];
                let const_val = self.regs[rhs.index()];
                let outcome = self.eval_cmp(op, fp, value, const_val);
                self.flag = outcome;
                if self.pbs.is_some() {
                    self.pending_prob.values.clear();
                    self.pending_prob.values.push((prob, value));
                    self.pending_prob.const_val = const_val;
                    self.pending_prob.outcome = outcome;
                }
            }
            DecOp::ProbCmpRI { op, fp, prob, imm } => {
                let value = self.regs[prob.index()];
                let outcome = self.eval_cmp(op, fp, value, imm);
                self.flag = outcome;
                if self.pbs.is_some() {
                    self.pending_prob.values.clear();
                    self.pending_prob.values.push((prob, value));
                    self.pending_prob.const_val = imm;
                    self.pending_prob.outcome = outcome;
                }
            }
            DecOp::ProbJmpPush { prob } => {
                let v = self.regs[prob.index()];
                if self.pbs.is_some() {
                    self.pending_prob.values.push((prob, v));
                }
            }
            DecOp::ProbJmpQuiet => {}
            DecOp::ProbJmp { prob, target } => {
                if let Some(p) = prob {
                    let v = self.regs[p.index()];
                    if self.pbs.is_some() {
                        self.pending_prob.values.push((p, v));
                    }
                }
                let (taken, kind) = self.resolve_prob_jump(pc);
                if taken {
                    next_pc = target;
                }
                branch = Some(BranchEvent {
                    taken,
                    kind,
                    is_prob: true,
                });
                if let Some(pbs) = self.pbs.as_mut() {
                    pbs.observe_branch(pc, target, taken);
                }
            }
            DecOp::Out { src, port } => {
                self.outputs.push(port, self.regs[src.index()]);
            }
            DecOp::Halt => {
                self.halted = true;
            }
            DecOp::Nop => {}
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(Some(StepRecord {
            pc,
            branch,
            mem_addr,
        }))
    }

    /// Current program counter (the block engine dispatches on it).
    #[inline(always)]
    pub(crate) fn pc(&self) -> u32 {
        self.pc
    }

    /// The architectural register file, for fragment-matched native
    /// specializations in the block-compiled capture engine (see
    /// `crate::aot`). Fragments are pure register dataflow: they touch
    /// neither memory, the flag, nor the PBS unit.
    #[inline(always)]
    pub(crate) fn regs_mut(&mut self) -> &mut [u64; 32] {
        &mut self.regs
    }

    /// Commits a straight-line block body in bulk: the pc lands on the
    /// instruction after the body and the retired-instruction counter
    /// advances by the body's record count — exactly the state `n`
    /// [`step_decoded`](Self::step_decoded) calls would have left.
    #[inline(always)]
    pub(crate) fn commit_straight(&mut self, next_pc: u32, n: u64) {
        self.pc = next_pc;
        self.executed += n;
    }

    /// The checked 64-bit load datapath — `DecOp::Load` without the op
    /// dispatch, for the loop specializations in `crate::aot`. Faults
    /// halt the machine and propagate exactly like `step_decoded`.
    /// Returns the pre-simulation data address.
    #[inline(always)]
    pub(crate) fn load_checked(
        &mut self,
        dst: Reg,
        base: Reg,
        offset: i64,
        pc: u32,
    ) -> Result<u64, EmuError> {
        let idx = self
            .mem_index(base, offset, pc)
            .inspect_err(|_| self.halted = true)?;
        self.regs[dst.index()] = self.memory[idx];
        Ok(idx as u64 * 8)
    }

    /// The condition flag, for inline `jf` terminator execution in the
    /// block-compiled capture engine.
    #[inline(always)]
    pub(crate) fn flag(&self) -> bool {
        self.flag
    }

    /// Evaluates a register-register compare against the architectural
    /// state — the `BrRR` condition datapath, shared with
    /// [`step_decoded`](Self::step_decoded)'s arm.
    #[inline(always)]
    pub(crate) fn cmp_rr(&self, op: CmpOp, fp: bool, lhs: Reg, rhs: Reg) -> bool {
        self.eval_cmp(op, fp, self.regs[lhs.index()], self.regs[rhs.index()])
    }

    /// Evaluates a register-immediate compare — the `BrRI` condition
    /// datapath.
    #[inline(always)]
    pub(crate) fn cmp_ri(&self, op: CmpOp, fp: bool, lhs: Reg, imm: u64) -> bool {
        self.eval_cmp(op, fp, self.regs[lhs.index()], imm)
    }

    /// Commits an inline-executed direct branch terminator: the pc
    /// redirect, the retired count and the PBS history observation —
    /// exactly the state effects of the `step_decoded`
    /// `Jf`/`BrRR`/`BrRI`/`Jmp` arms, minus the record construction the
    /// block engine does itself.
    #[inline(always)]
    pub(crate) fn commit_term_branch(&mut self, pc: u32, target: u32, taken: bool) {
        self.pc = if taken { target } else { pc + 1 };
        self.executed += 1;
        // A forward branch is a provable no-op on the PBS context
        // table (`ContextTable::observe_branch` returns before any
        // state is touched), so the observation call is skipped
        // entirely — loop detection only consumes backward branches.
        if target <= pc {
            if let Some(pbs) = self.pbs.as_mut() {
                pbs.observe_branch(pc, target, taken);
            }
        }
    }

    /// Commits an inline-executed `call` terminator: the stack push, pc
    /// redirect, retired count and PBS call observation — the state
    /// effects of `step_decoded`'s `Call` arm. On overflow the machine
    /// halts on the faulting instruction with nothing retired, exactly
    /// like the interpreter.
    #[inline(always)]
    pub(crate) fn commit_term_call(&mut self, pc: u32, target: u32) -> Result<(), EmuError> {
        if self.call_stack.len() >= self.config.max_call_depth {
            self.halted = true;
            return Err(EmuError::CallStackOverflow { pc });
        }
        self.call_stack.push(pc + 1);
        self.pc = target;
        self.executed += 1;
        if let Some(pbs) = self.pbs.as_mut() {
            pbs.observe_call(pc);
        }
        Ok(())
    }

    /// `PROB_JMP` executed inline as a block terminator: pending-value
    /// push, probabilistic resolution, pc redirect and retire, PBS
    /// history observation. Returns `(taken, kind)` for the branch
    /// record — `kind` distinguishes PBS-directed resolutions.
    #[inline(always)]
    pub(crate) fn commit_term_prob(
        &mut self,
        prob: Option<Reg>,
        pc: u32,
        target: u32,
    ) -> (bool, BranchEventKind) {
        if let Some(p) = prob {
            let v = self.regs[p.index()];
            if self.pbs.is_some() {
                self.pending_prob.values.push((p, v));
            }
        }
        let (taken, kind) = self.resolve_prob_jump(pc);
        self.pc = if taken { target } else { pc + 1 };
        self.executed += 1;
        // Same forward-branch skip as `commit_term_branch`: the
        // context table never mutates on a forward target.
        if target <= pc {
            if let Some(pbs) = self.pbs.as_mut() {
                pbs.observe_branch(pc, target, taken);
            }
        }
        (taken, kind)
    }

    /// Commits an inline-executed `ret` terminator — `step_decoded`'s
    /// `Ret` arm minus the record construction.
    #[inline(always)]
    pub(crate) fn commit_term_ret(&mut self, pc: u32) -> Result<(), EmuError> {
        let Some(ra) = self.call_stack.pop() else {
            self.halted = true;
            return Err(EmuError::CallStackUnderflow { pc });
        };
        self.pc = ra;
        self.executed += 1;
        if let Some(pbs) = self.pbs.as_mut() {
            pbs.observe_ret();
        }
        Ok(())
    }

    /// Executes one straight-line op from a compiled block body without
    /// touching `pc`/`executed` — the block executor commits those in
    /// bulk via [`commit_straight`](Self::commit_straight). Returns the
    /// pre-simulation data address for loads (`None` for everything
    /// else; stores never reach the data-latency pre-simulation, same
    /// as the capture path over [`step_decoded`](Self::step_decoded)).
    ///
    /// The arms are copied verbatim from `step_decoded`'s non-control
    /// subset — including the PBS probes (`prob_cmp`, `prob_jmp_push`),
    /// which are plain straight-line ops from the trace's point of
    /// view; the capture-tier equivalence proptests lock the two
    /// datapaths together. Control ops (block terminators) and `out`
    /// never enter a block body — the block builder in `crate::aot`
    /// routes them through `step_decoded`.
    ///
    /// # Errors
    ///
    /// Memory faults halt the machine and propagate, exactly like
    /// `step_decoded`.
    #[inline(always)]
    pub(crate) fn exec_straight_op(&mut self, op: DecOp, pc: u32) -> Result<Option<u64>, EmuError> {
        match op {
            DecOp::AluRR {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = self.regs[src1.index()];
                let b = self.regs[src2.index()];
                self.regs[dst.index()] = alu_eval(op, a, b);
            }
            DecOp::AluRI { op, dst, src1, imm } => {
                let a = self.regs[src1.index()];
                self.regs[dst.index()] = alu_eval(op, a, imm);
            }
            DecOp::Li { dst, imm } => self.regs[dst.index()] = imm,
            DecOp::Mov { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            DecOp::FpBin {
                op,
                dst,
                src1,
                src2,
            } => {
                let a = f64::from_bits(self.regs[src1.index()]);
                let b = f64::from_bits(self.regs[src2.index()]);
                self.regs[dst.index()] = fp_bin_eval(op, a, b).to_bits();
            }
            DecOp::FpUn { op, dst, src } => {
                let a = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = fp_un_eval(op, a).to_bits();
            }
            DecOp::IntToFp { dst, src } => {
                self.regs[dst.index()] = (self.regs[src.index()] as i64 as f64).to_bits();
            }
            DecOp::FpToInt { dst, src } => {
                let v = f64::from_bits(self.regs[src.index()]);
                self.regs[dst.index()] = (v as i64) as u64;
            }
            DecOp::CMov {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                self.regs[dst.index()] = if self.regs[cond.index()] != 0 {
                    self.regs[if_true.index()]
                } else {
                    self.regs[if_false.index()]
                };
            }
            DecOp::Load { dst, base, offset } => {
                return self.load_checked(dst, base, offset, pc).map(Some);
            }
            DecOp::Store { src, base, offset } => {
                let idx = self
                    .mem_index(base, offset, pc)
                    .inspect_err(|_| self.halted = true)?;
                self.memory[idx] = self.regs[src.index()];
            }
            DecOp::CmpRR { op, fp, lhs, rhs } => {
                self.flag = self.eval_cmp(op, fp, self.regs[lhs.index()], self.regs[rhs.index()]);
            }
            DecOp::CmpRI { op, fp, lhs, imm } => {
                self.flag = self.eval_cmp(op, fp, self.regs[lhs.index()], imm);
            }
            DecOp::ProbCmpRR { op, fp, prob, rhs } => {
                let value = self.regs[prob.index()];
                let const_val = self.regs[rhs.index()];
                let outcome = self.eval_cmp(op, fp, value, const_val);
                self.flag = outcome;
                if self.pbs.is_some() {
                    self.pending_prob.values.clear();
                    self.pending_prob.values.push((prob, value));
                    self.pending_prob.const_val = const_val;
                    self.pending_prob.outcome = outcome;
                }
            }
            DecOp::ProbCmpRI { op, fp, prob, imm } => {
                let value = self.regs[prob.index()];
                let outcome = self.eval_cmp(op, fp, value, imm);
                self.flag = outcome;
                if self.pbs.is_some() {
                    self.pending_prob.values.clear();
                    self.pending_prob.values.push((prob, value));
                    self.pending_prob.const_val = imm;
                    self.pending_prob.outcome = outcome;
                }
            }
            DecOp::ProbJmpPush { prob } => {
                let v = self.regs[prob.index()];
                if self.pbs.is_some() {
                    self.pending_prob.values.push((prob, v));
                }
            }
            DecOp::ProbJmpQuiet => {}
            DecOp::Nop => {}
            _ => unreachable!("control and rare ops never enter a block body"),
        }
        Ok(None)
    }

    /// Executes up to `max` instructions from the predecoded form,
    /// refilling `buf` (cleared first) with their [`StepRecord`]s — the
    /// batch half of the fused emulate→time loop. Stops early at `halt`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`]; records buffered before the
    /// fault are left in `buf`.
    pub fn step_block(&mut self, buf: &mut Vec<StepRecord>, max: usize) -> Result<(), EmuError> {
        buf.clear();
        self.step_block_with(max, |rec| buf.push(rec)).map(|_| ())
    }

    /// Executes up to `max` instructions, handing each [`StepRecord`] to
    /// `sink` as it is produced — the zero-buffer form of
    /// [`step_block`](Self::step_block) used by trace capture, which
    /// packs records into its own chunk layout and would otherwise pay a
    /// buffer round-trip per record. Returns the number of instructions
    /// executed (0 once halted).
    ///
    /// # Errors
    ///
    /// Propagates the first [`EmuError`]; records already handed to
    /// `sink` stay consumed.
    pub fn step_block_with<F: FnMut(StepRecord)>(
        &mut self,
        max: usize,
        mut sink: F,
    ) -> Result<usize, EmuError> {
        let mut n = 0;
        while n < max {
            match self.step_decoded()? {
                Some(rec) => {
                    n += 1;
                    sink(rec);
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// Runs until `halt`, with an instruction budget.
    ///
    /// # Errors
    ///
    /// Any [`EmuError`] from execution, or
    /// [`EmuError::InstLimitExceeded`] if the program does not halt
    /// within `max_insts`.
    pub fn run_to_halt(&mut self, max_insts: u64) -> Result<u64, EmuError> {
        let start = self.executed;
        while !self.halted {
            if self.executed - start >= max_insts {
                return Err(EmuError::InstLimitExceeded { limit: max_insts });
            }
            // The decoded interpreter: architecturally identical to
            // `step`, without the per-instruction record construction
            // costs of the reference path.
            self.step_decoded()?;
        }
        Ok(self.executed - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_core::PbsConfig;
    use probranch_isa::ProgramBuilder;

    fn run(b: ProgramBuilder) -> Emulator {
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        e.run_to_halt(1_000_000).unwrap();
        e
    }

    #[test]
    fn arithmetic_basics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10)
            .li(Reg::R2, 3)
            .add(Reg::R3, Reg::R1, Reg::R2)
            .sub(Reg::R4, Reg::R1, Reg::R2)
            .mul(Reg::R5, Reg::R1, Reg::R2)
            .div(Reg::R6, Reg::R1, Reg::R2)
            .rem(Reg::R7, Reg::R1, Reg::R2)
            .halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R3), 13);
        assert_eq!(e.reg(Reg::R4), 7);
        assert_eq!(e.reg(Reg::R5), 30);
        assert_eq!(e.reg(Reg::R6), 3);
        assert_eq!(e.reg(Reg::R7), 1);
    }

    #[test]
    fn signed_ops_and_division_by_zero() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, -10i64)
            .li(Reg::R2, 3)
            .div(Reg::R3, Reg::R1, Reg::R2)
            .li(Reg::R4, 0)
            .div(Reg::R5, Reg::R1, Reg::R4)
            .sar(Reg::R6, Reg::R1, 1)
            .slt(Reg::R7, Reg::R1, Reg::R2)
            .sltu(Reg::R8, Reg::R1, Reg::R2)
            .halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R3) as i64, -3);
        assert_eq!(e.reg(Reg::R5), 0, "division by zero yields 0");
        assert_eq!(e.reg(Reg::R6) as i64, -5);
        assert_eq!(e.reg(Reg::R7), 1);
        assert_eq!(e.reg(Reg::R8), 0, "unsigned view of -10 is huge");
    }

    #[test]
    fn fp_ops() {
        let mut b = ProgramBuilder::new();
        b.lif(Reg::R1, 2.25)
            .lif(Reg::R2, 4.0)
            .fadd(Reg::R3, Reg::R1, Reg::R2)
            .fmul(Reg::R4, Reg::R1, Reg::R2)
            .fsqrt(Reg::R5, Reg::R2)
            .fln(Reg::R6, Reg::R2)
            .itof(Reg::R7, Reg::R8) // r8 = 0
            .halt();
        let e = run(b);
        assert_eq!(e.reg_f64(Reg::R3), 6.25);
        assert_eq!(e.reg_f64(Reg::R4), 9.0);
        assert_eq!(e.reg_f64(Reg::R5), 2.0);
        assert!((e.reg_f64(Reg::R6) - 4.0f64.ln()).abs() < 1e-15);
        assert_eq!(e.reg_f64(Reg::R7), 0.0);
    }

    #[test]
    fn loop_and_branches() {
        // Sum 1..=100 with a do-while loop.
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(Reg::R1, 0).li(Reg::R2, 1);
        b.bind(top);
        b.add(Reg::R1, Reg::R1, Reg::R2).add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Le, Reg::R2, 100, top);
        b.out(Reg::R1, 0).halt();
        let e = run(b);
        assert_eq!(e.output(0), &[5050]);
    }

    #[test]
    fn cmp_jf_pair() {
        let mut b = ProgramBuilder::new();
        let skip = b.label("skip");
        b.li(Reg::R1, 5)
            .cmp(CmpOp::Gt, Reg::R1, 3)
            .jf(skip)
            .li(Reg::R2, 111);
        b.bind(skip);
        b.halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R2), 0, "jf taken skips the li");
    }

    #[test]
    fn memory_load_store() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 64) // base address
            .li(Reg::R2, 7)
            .st(Reg::R2, Reg::R1, 8)
            .ld(Reg::R3, Reg::R1, 8)
            .halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R3), 7);
        assert_eq!(e.mem_word(9), 7);
    }

    #[test]
    fn memory_fault_on_misaligned() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 3).ld(Reg::R2, Reg::R1, 0).halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        let err = e.run_to_halt(10).unwrap_err();
        assert!(matches!(err, EmuError::MemoryFault { addr: 3, .. }));
        assert!(e.is_halted());
    }

    #[test]
    fn memory_fault_out_of_bounds() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, i64::MAX - 7).ld(Reg::R2, Reg::R1, 0).halt();
        let mut e = Emulator::new(
            b.build().unwrap(),
            EmuConfig {
                mem_words: 16,
                max_call_depth: 4,
            },
        );
        assert!(matches!(
            e.run_to_halt(10),
            Err(EmuError::MemoryFault { .. })
        ));
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new();
        let f = b.label("f");
        let main_end = b.label("end");
        b.li(Reg::R1, 1).call(f).jmp(main_end);
        b.bind(f);
        b.add(Reg::R1, Reg::R1, 10).ret();
        b.bind(main_end);
        b.halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R1), 11);
    }

    #[test]
    fn call_stack_underflow() {
        let mut b = ProgramBuilder::new();
        b.ret().halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        assert_eq!(
            e.run_to_halt(10),
            Err(EmuError::CallStackUnderflow { pc: 0 })
        );
    }

    #[test]
    fn call_stack_overflow() {
        let mut b = ProgramBuilder::new();
        let f = b.label("f");
        b.bind(f);
        b.call(f);
        b.halt();
        let mut e = Emulator::new(
            b.build().unwrap(),
            EmuConfig {
                mem_words: 16,
                max_call_depth: 8,
            },
        );
        assert!(matches!(
            e.run_to_halt(100),
            Err(EmuError::CallStackOverflow { .. })
        ));
    }

    #[test]
    fn inst_limit() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        b.jmp(top).halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        assert_eq!(
            e.run_to_halt(100),
            Err(EmuError::InstLimitExceeded { limit: 100 })
        );
    }

    #[test]
    fn cmov_selects() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0)
            .li(Reg::R2, 7)
            .li(Reg::R3, 9)
            .cmov(Reg::R4, Reg::R1, Reg::R2, Reg::R3)
            .li(Reg::R1, 5)
            .cmov(Reg::R5, Reg::R1, Reg::R2, Reg::R3)
            .halt();
        let e = run(b);
        assert_eq!(e.reg(Reg::R4), 9);
        assert_eq!(e.reg(Reg::R5), 7);
    }

    /// A program with a probabilistic branch in a counted loop: an
    /// xorshift64* RNG in ISA code draws a value, compares it against a
    /// threshold register, and counts taken outcomes.
    fn prob_loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let join = b.label("join");
        b.li(Reg::R1, 0x1234_5678_9abc_def1u64 as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.li(Reg::R4, (u64::MAX / 2) as i64);
        b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
        b.bind(top);
        b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
        b.shr(Reg::R5, Reg::R1, 27).xor(Reg::R1, Reg::R1, Reg::R5);
        b.mul(Reg::R7, Reg::R1, Reg::R6);
        b.sltu(Reg::R8, Reg::R7, Reg::R4);
        b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
        b.prob_jmp(None, join); // taken ~50%
        b.add(Reg::R3, Reg::R3, 1); // not-taken path counts
        b.bind(join);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, iters, top);
        b.out(Reg::R3, 0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn prob_branch_without_pbs_behaves_like_regular() {
        let p = prob_loop_program(1000);
        let mut e = Emulator::new(p, EmuConfig::default());
        e.run_to_halt(100_000).unwrap();
        let count = e.output(0)[0];
        // ~50% not-taken.
        assert!((350..650).contains(&count), "count {count}");
        assert!(
            e.prob_consumed().is_empty(),
            "no PBS, no consumption record"
        );
    }

    #[test]
    fn prob_branch_with_pbs_directs_after_bootstrap() {
        let p = prob_loop_program(1000);
        let mut e = Emulator::with_pbs(p, EmuConfig::default(), PbsUnit::new(PbsConfig::default()));
        e.run_to_halt(100_000).unwrap();
        let stats = e.pbs_stats().unwrap();
        assert_eq!(stats.directed + stats.bootstrap + stats.bypassed, 1000);
        assert!(stats.directed >= 990, "steady state dominates: {stats:?}");
        // The statistical behaviour is preserved: still ~50% not-taken.
        let count = e.output(0)[0];
        assert!((350..650).contains(&count), "count {count}");
        assert_eq!(e.prob_consumed().len(), 1000);
    }

    #[test]
    fn pbs_is_deterministic_and_replays_the_value_stream() {
        let run_once = || {
            let p = prob_loop_program(500);
            let mut e =
                Emulator::with_pbs(p, EmuConfig::default(), PbsUnit::new(PbsConfig::default()));
            e.run_to_halt(100_000).unwrap();
            (e.output(0).to_vec(), e.prob_consumed().to_vec())
        };
        let (o1, c1) = run_once();
        let (o2, c2) = run_once();
        assert_eq!(o1, o2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn pbs_consumed_stream_is_delayed_replay_of_original() {
        // The consumed stream under PBS must be: the first B values
        // (bootstrap, consumed as generated), then the generated stream
        // replayed from the start (paper Section III-B determinism).
        let p = prob_loop_program(100);
        let mut with = Emulator::with_pbs(
            p.clone(),
            EmuConfig::default(),
            PbsUnit::new(PbsConfig::default()),
        );
        with.run_to_halt(100_000).unwrap();
        // Reference: run without PBS and reconstruct generated values by
        // re-running with a unit whose in_flight is huge (always
        // bootstrap, consumed == generated).
        let mut gen = Emulator::with_pbs(
            p,
            EmuConfig::default(),
            PbsUnit::new(PbsConfig {
                in_flight: 1_000_000,
                ..PbsConfig::default()
            }),
        );
        gen.run_to_halt(100_000).unwrap();
        let generated = gen.prob_consumed();
        let consumed = with.prob_consumed();
        assert_eq!(consumed.len(), generated.len());
        assert_eq!(&consumed[..4], &generated[..4]);
        assert_eq!(&consumed[4..], &generated[..generated.len() - 4]);
    }

    #[test]
    fn out_ports_are_separate() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1)
            .li(Reg::R2, 2)
            .out(Reg::R1, 0)
            .out(Reg::R2, 1)
            .out(Reg::R1, 0)
            .halt();
        let e = run(b);
        assert_eq!(e.output(0), &[1, 1]);
        assert_eq!(e.output(1), &[2]);
        assert_eq!(e.output(9), &[] as &[u64]);
    }

    #[test]
    fn decoded_interpreter_matches_reference_step_stream() {
        // Lock-step the `Inst` interpreter against the predecoded one on
        // a PBS workload: identical records, outputs, consumed stream.
        let p = prob_loop_program(300);
        let mut a = Emulator::with_pbs(
            p.clone(),
            EmuConfig::default(),
            PbsUnit::new(PbsConfig::default()),
        );
        let mut b = Emulator::with_pbs(p, EmuConfig::default(), PbsUnit::new(PbsConfig::default()));
        loop {
            match (a.step().unwrap(), b.step_decoded().unwrap()) {
                (None, None) => break,
                (Some(da), Some(db)) => {
                    assert_eq!(db.pc, da.pc);
                    assert_eq!(db.branch, da.branch);
                    assert_eq!(db.mem_addr(), da.mem_addr);
                }
                (x, y) => panic!("stream length mismatch: {x:?} vs {y:?}"),
            }
        }
        assert_eq!(a.output(0), b.output(0));
        assert_eq!(a.prob_consumed(), b.prob_consumed());
        assert_eq!(a.pbs_stats(), b.pbs_stats());
    }

    #[test]
    fn step_block_batches_and_stops_at_halt() {
        let mut bld = ProgramBuilder::new();
        bld.li(Reg::R1, 1)
            .add(Reg::R1, Reg::R1, 1)
            .out(Reg::R1, 3)
            .halt();
        let mut e = Emulator::new(bld.build().unwrap(), EmuConfig::default());
        let mut buf = Vec::new();
        e.step_block(&mut buf, 3).unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[0].pc, 0);
        e.step_block(&mut buf, 64).unwrap();
        assert_eq!(buf.len(), 1, "only the halt remains");
        e.step_block(&mut buf, 64).unwrap();
        assert!(buf.is_empty(), "halted machine yields an empty block");
        assert_eq!(e.output(3), &[2]);
        assert_eq!(e.outputs_sorted(), vec![(3u16, vec![2u64])]);
    }

    #[test]
    fn dyn_inst_stream_reports_branches_and_mem() {
        let mut b = ProgramBuilder::new();
        let l = b.label("l");
        b.li(Reg::R1, 64)
            .st(Reg::R1, Reg::R1, 0)
            .br(CmpOp::Eq, Reg::R1, 64, l);
        b.bind(l);
        b.halt();
        let mut e = Emulator::new(b.build().unwrap(), EmuConfig::default());
        let i1 = e.step().unwrap().unwrap();
        assert_eq!(i1.pc, 0);
        assert!(i1.branch.is_none());
        let i2 = e.step().unwrap().unwrap();
        assert_eq!(i2.mem_addr, Some(64));
        let i3 = e.step().unwrap().unwrap();
        let ev = i3.branch.unwrap();
        assert!(ev.taken);
        assert_eq!(ev.kind, BranchEventKind::Conditional);
        let i4 = e.step().unwrap().unwrap();
        assert!(matches!(i4.inst, Inst::Halt));
        assert_eq!(e.step().unwrap(), None, "halted machine steps to None");
    }
}
