//! The out-of-order superscalar timing model.
//!
//! A trace-driven window model in the style of Sniper's detailed core: it
//! consumes the emulator's [`DynInst`] stream in program order and
//! computes, per instruction, the fetch / dispatch / issue / complete /
//! commit cycles under the machine's resource constraints:
//!
//! * fetch width, with fetch-group breaks after taken branches and
//!   I-cache miss stalls;
//! * a reorder buffer that back-pressures fetch when full;
//! * register dataflow (including the condition flag as a renamed
//!   pseudo-register) and issue-width contention;
//! * functional-unit latencies per [`ExecClass`], with load latencies
//!   from the cache hierarchy;
//! * branch resolution at execute: a mispredicted branch redirects fetch
//!   at `complete + mispredict_penalty` (the paper's 10-cycle front-end
//!   refill);
//! * in-order commit at the pipeline width.
//!
//! Wrong-path instructions are not simulated; their cost is the redirect
//! bubble — the standard trace-driven approximation.

use probranch_isa::{ExecClass, Inst};
use probranch_predictor::BranchPredictor;

use crate::cache::MemoryHierarchy;
use crate::machine::{BranchEventKind, DynInst};

/// Functional-unit latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLatencies {
    /// Simple integer ops.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// FP add/sub/conversions.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide / sqrt.
    pub fp_div: u64,
    /// Transcendentals (exp, ln, sin, cos).
    pub fp_long: u64,
    /// Store address/data (memory update happens post-commit).
    pub store: u64,
    /// Branch resolution.
    pub branch: u64,
    /// Everything else.
    pub other: u64,
}

impl Default for ExecLatencies {
    fn default() -> ExecLatencies {
        ExecLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 12,
            fp_long: 20,
            store: 1,
            branch: 1,
            other: 1,
        }
    }
}

/// Core configuration. Defaults model the paper's baseline: a 4-wide
/// out-of-order core with a 168-entry ROB "configured after Intel's
/// Sandy Bridge" and a 10-cycle branch misprediction penalty
/// (Section VI-B). The 8-wide configuration of Figure 8 uses
/// [`OooConfig::wide`].
#[derive(Debug, Clone)]
pub struct OooConfig {
    /// Instructions fetched/dispatched/committed per cycle.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Front-end depth in cycles (fetch to dispatch).
    pub frontend_depth: u64,
    /// Cycles to re-fill the front end after a resolved misprediction.
    pub mispredict_penalty: u64,
    /// Functional-unit latencies.
    pub latencies: ExecLatencies,
}

impl Default for OooConfig {
    fn default() -> OooConfig {
        OooConfig {
            width: 4,
            rob_size: 168,
            frontend_depth: 5,
            mispredict_penalty: 10,
            latencies: ExecLatencies::default(),
        }
    }
}

impl OooConfig {
    /// The paper's 8-wide configuration (Figure 8): 8-wide, 256-entry
    /// ROB.
    pub fn wide() -> OooConfig {
        OooConfig {
            width: 8,
            rob_size: 256,
            ..OooConfig::default()
        }
    }
}

/// One predictor-consulted conditional branch, as recorded by the
/// optional branch trace (golden-trace regression testing).
///
/// Only branches that actually query the predictor appear: PBS-directed
/// instances and filtered probabilistic branches resolve without a
/// prediction and are excluded, so the trace is exactly the predictor's
/// observable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchTraceEntry {
    /// Program counter of the branch.
    pub pc: u32,
    /// The predictor's direction guess.
    pub predicted: bool,
    /// The architecturally resolved direction.
    pub taken: bool,
    /// Whether this was a probabilistic branch.
    pub is_prob: bool,
}

/// Aggregate statistics of a timing-model run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Dynamic control-transfer instructions.
    pub dyn_branches: u64,
    /// Dynamic conditional branches (including probabilistic ones
    /// executing as regular branches).
    pub cond_branches: u64,
    /// Dynamic probabilistic jumps (all resolutions).
    pub prob_branches: u64,
    /// Probabilistic jumps steered by PBS (no predictor involvement).
    pub pbs_directed: u64,
    /// Mispredictions, total.
    pub mispredicts: u64,
    /// Mispredictions of probabilistic branches.
    pub mispredicts_prob: u64,
    /// Mispredictions of regular branches.
    pub mispredicts_regular: u64,
}

impl TimingStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per 1000 instructions.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Regular-branch mispredictions per 1000 instructions (the Figure 9
    /// interference metric).
    pub fn mpki_regular(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts_regular as f64 * 1000.0 / self.instructions as f64
        }
    }
}

const ISSUE_RING: usize = 1 << 16;
/// Pseudo-register index modeling the condition flag.
const FLAG_REG: usize = 32;

/// The trace-driven out-of-order timing model.
#[derive(Debug, Clone)]
pub struct OooTimingModel {
    cfg: OooConfig,
    hierarchy: MemoryHierarchy,
    /// Cycle at which the next instruction can be fetched.
    fetch_cycle: u64,
    /// Instructions already fetched in `fetch_cycle`.
    fetched_in_cycle: u32,
    /// Ready cycle per architectural register + flag.
    reg_ready: [u64; 33],
    /// Commit cycles of in-flight instructions (ROB occupancy).
    rob: std::collections::VecDeque<u64>,
    /// Issue-bandwidth ring: (cycle, issued count).
    issue_ring: Vec<(u64, u32)>,
    last_commit: u64,
    committed_in_commit_cycle: u32,
    stats: TimingStats,
    /// Per-branch (pc, predicted, actual) log; `None` unless enabled.
    trace: Option<Vec<BranchTraceEntry>>,
}

impl OooTimingModel {
    /// Creates a model with the given configuration and a default memory
    /// hierarchy.
    pub fn new(cfg: OooConfig) -> OooTimingModel {
        OooTimingModel {
            hierarchy: MemoryHierarchy::default(),
            fetch_cycle: 0,
            fetched_in_cycle: 0,
            reg_ready: [0; 33],
            rob: std::collections::VecDeque::with_capacity(cfg.rob_size),
            issue_ring: vec![(u64::MAX, 0); ISSUE_RING],
            last_commit: 0,
            committed_in_commit_cycle: 0,
            stats: TimingStats::default(),
            trace: None,
            cfg,
        }
    }

    /// Starts recording every predictor-consulted conditional branch as
    /// a [`BranchTraceEntry`]; retrieve the log with
    /// [`take_trace`](Self::take_trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded branch trace (empty if tracing was never
    /// enabled).
    pub fn take_trace(&mut self) -> Vec<BranchTraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    fn latency_of(&mut self, d: &DynInst) -> u64 {
        match d.inst.exec_class() {
            ExecClass::IntAlu => self.cfg.latencies.int_alu,
            ExecClass::IntMul => self.cfg.latencies.int_mul,
            ExecClass::IntDiv => self.cfg.latencies.int_div,
            ExecClass::FpAdd => self.cfg.latencies.fp_add,
            ExecClass::FpMul => self.cfg.latencies.fp_mul,
            ExecClass::FpDiv => self.cfg.latencies.fp_div,
            ExecClass::FpLong => self.cfg.latencies.fp_long,
            ExecClass::Store => self.cfg.latencies.store,
            ExecClass::Branch => self.cfg.latencies.branch,
            ExecClass::Other => self.cfg.latencies.other,
            ExecClass::Load => {
                let addr = d.mem_addr.expect("loads carry an address");
                self.hierarchy.data_access(addr)
            }
        }
    }

    fn issue_slot(&mut self, from: u64) -> u64 {
        let mut c = from;
        loop {
            let slot = &mut self.issue_ring[(c as usize) % ISSUE_RING];
            if slot.0 != c {
                *slot = (c, 1);
                return c;
            }
            if slot.1 < self.cfg.width {
                slot.1 += 1;
                return c;
            }
            c += 1;
        }
    }

    /// Consumes one dynamic instruction.
    ///
    /// `predictor` is consulted for conditional branches; when
    /// `filter_prob` is set, probabilistic branches neither access nor
    /// update the predictor and are treated as perfectly resolved — the
    /// Figure 9 interference-isolation mode.
    pub fn consume(&mut self, d: &DynInst, predictor: &mut dyn BranchPredictor, filter_prob: bool) {
        // ---- fetch -----------------------------------------------------------
        let istall = self.hierarchy.inst_access(d.pc as u64 * 8);
        if istall > 0 {
            self.fetch_cycle += istall;
            self.fetched_in_cycle = 0;
        }
        if self.fetched_in_cycle >= self.cfg.width {
            self.fetch_cycle += 1;
            self.fetched_in_cycle = 0;
        }
        // ROB back-pressure: the instruction cannot enter until the entry
        // `rob_size` older has committed.
        if self.rob.len() >= self.cfg.rob_size {
            let free_at = self.rob.pop_front().expect("rob non-empty");
            if free_at > self.fetch_cycle {
                self.fetch_cycle = free_at;
                self.fetched_in_cycle = 0;
            }
        }
        let fetch = self.fetch_cycle;
        self.fetched_in_cycle += 1;

        // ---- dispatch / register dataflow -----------------------------------
        let dispatch = fetch + self.cfg.frontend_depth;
        let mut ready = dispatch;
        for r in d.inst.uses().iter() {
            ready = ready.max(self.reg_ready[r.index()]);
        }
        if matches!(d.inst, Inst::Jf { .. } | Inst::ProbJmp { .. }) {
            ready = ready.max(self.reg_ready[FLAG_REG]);
        }

        // ---- issue / execute --------------------------------------------------
        let issue = self.issue_slot(ready);
        let complete = issue + self.latency_of(d);
        for r in d.inst.defs().iter() {
            self.reg_ready[r.index()] = complete;
        }
        if matches!(d.inst, Inst::Cmp { .. } | Inst::ProbCmp { .. }) {
            self.reg_ready[FLAG_REG] = complete;
        }

        // ---- branch resolution -------------------------------------------------
        if let Some(ev) = d.branch {
            self.stats.dyn_branches += 1;
            let mispredicted = match ev.kind {
                BranchEventKind::Conditional => {
                    self.stats.cond_branches += 1;
                    if ev.is_prob {
                        self.stats.prob_branches += 1;
                    }
                    if ev.is_prob && filter_prob {
                        false // oracle-resolved, predictor untouched
                    } else {
                        let predicted = predictor.predict(d.pc as u64);
                        predictor.update(d.pc as u64, ev.taken);
                        if let Some(trace) = &mut self.trace {
                            trace.push(BranchTraceEntry {
                                pc: d.pc,
                                predicted,
                                taken: ev.taken,
                                is_prob: ev.is_prob,
                            });
                        }
                        predicted != ev.taken
                    }
                }
                BranchEventKind::PbsDirected => {
                    self.stats.cond_branches += 1;
                    self.stats.prob_branches += 1;
                    self.stats.pbs_directed += 1;
                    false // direction known at fetch; no predictor access
                }
                // Direct jumps/calls resolve in the front end; returns
                // are covered by a return-address-stack model assumed
                // perfect for our call depths.
                BranchEventKind::Unconditional | BranchEventKind::Call | BranchEventKind::Ret => {
                    false
                }
            };
            if mispredicted {
                self.stats.mispredicts += 1;
                if ev.is_prob {
                    self.stats.mispredicts_prob += 1;
                } else {
                    self.stats.mispredicts_regular += 1;
                }
                // Redirect: fetch resumes after the branch resolves plus
                // the front-end refill penalty.
                self.fetch_cycle = complete + self.cfg.mispredict_penalty;
                self.fetched_in_cycle = 0;
            } else if ev.taken {
                // Taken branches end the fetch group.
                self.fetch_cycle = fetch + 1;
                self.fetched_in_cycle = 0;
            }
        }

        // ---- commit -------------------------------------------------------------
        let mut commit = complete.max(self.last_commit);
        if commit == self.last_commit {
            if self.committed_in_commit_cycle >= self.cfg.width {
                commit += 1;
                self.committed_in_commit_cycle = 1;
            } else {
                self.committed_in_commit_cycle += 1;
            }
        } else {
            self.committed_in_commit_cycle = 1;
        }
        self.last_commit = commit;
        self.rob.push_back(commit);
        self.stats.instructions += 1;
        self.stats.cycles = commit;
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// The memory hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// The configuration.
    pub fn config(&self) -> &OooConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::{AluOp, CmpOp, Operand, Reg};
    use probranch_predictor::StaticPredictor;

    fn alu(pc: u32, dst: Reg, src: Reg) -> DynInst {
        DynInst {
            pc,
            inst: Inst::Alu {
                op: AluOp::Add,
                dst,
                src1: src,
                src2: Operand::imm(1),
            },
            branch: None,
            mem_addr: None,
        }
    }

    fn branch(pc: u32, taken: bool) -> DynInst {
        DynInst {
            pc,
            inst: Inst::Br {
                op: CmpOp::Lt,
                fp: false,
                lhs: Reg::R1,
                rhs: Operand::imm(0),
                target: 0,
            },
            branch: Some(crate::machine::BranchEvent {
                taken,
                kind: BranchEventKind::Conditional,
                is_prob: false,
            }),
            mem_addr: None,
        }
    }

    #[test]
    fn independent_instructions_reach_width_ipc() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        // Independent single-cycle instructions on distinct registers
        // (cycled); a 4-wide core should approach IPC 4 once the cold
        // I-cache misses are amortized.
        for i in 0..100_000u32 {
            let r = Reg::new(1 + (i % 8)).unwrap();
            m.consume(&alu(i % 64, r, r), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc > 3.5, "ipc {ipc}");
    }

    #[test]
    fn dependent_chain_is_serial() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        for i in 0..4000u32 {
            m.consume(&alu(i % 64, Reg::R1, Reg::R1), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc < 1.1, "dependent chain must serialize, ipc {ipc}");
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Always-taken branches predicted not-taken by the static
        // predictor: every branch is a full redirect.
        let run = |taken: bool| {
            let mut m = OooTimingModel::new(OooConfig::default());
            let mut p = StaticPredictor::not_taken();
            for i in 0..2000u32 {
                m.consume(&branch(i % 64, taken), &mut p, false);
                for j in 0..3u32 {
                    let r = Reg::new(2 + j).unwrap();
                    m.consume(&alu((i * 4 + j) % 64, r, r), &mut p, false);
                }
            }
            m.stats()
        };
        let bad = run(true); // all mispredicted
        let good = run(false); // all correct
        assert_eq!(bad.mispredicts, 2000);
        assert_eq!(good.mispredicts, 0);
        assert!(
            bad.cycles > good.cycles * 3,
            "mispredicts {} cycles vs clean {} cycles",
            bad.cycles,
            good.cycles
        );
    }

    #[test]
    fn pbs_directed_branches_do_not_touch_predictor_or_mispredict() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::not_taken();
        for i in 0..100u32 {
            let mut d = branch(i % 16, true);
            d.branch = Some(crate::machine::BranchEvent {
                taken: true,
                kind: BranchEventKind::PbsDirected,
                is_prob: true,
            });
            m.consume(&d, &mut p, false);
        }
        let s = m.stats();
        assert_eq!(s.mispredicts, 0);
        assert_eq!(s.pbs_directed, 100);
        assert_eq!(s.prob_branches, 100);
    }

    #[test]
    fn filter_mode_isolates_prob_branches() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::not_taken();
        let mut d = branch(5, true);
        d.branch = Some(crate::machine::BranchEvent {
            taken: true,
            kind: BranchEventKind::Conditional,
            is_prob: true,
        });
        m.consume(&d, &mut p, true);
        let s = m.stats();
        assert_eq!(s.mispredicts, 0, "filtered prob branch cannot mispredict");
        assert_eq!(s.prob_branches, 1);
    }

    #[test]
    fn loads_hit_in_cache_after_warmup() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        let load = |pc: u32, addr: u64| DynInst {
            pc,
            inst: Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            branch: None,
            mem_addr: Some(addr),
        };
        m.consume(&load(0, 0x100), &mut p, false);
        let cold_cycles = m.stats().cycles;
        for i in 1..100u32 {
            m.consume(&load(i % 16, 0x100), &mut p, false);
        }
        let s = m.stats();
        assert!(s.cycles < cold_cycles + 400, "warm loads must be fast");
        assert!(m.hierarchy().l1d().hits() >= 99);
    }

    #[test]
    fn taken_branches_limit_fetch_bandwidth() {
        // All-taken, perfectly predicted branches: one fetch group per
        // branch caps IPC near 1 even on a 4-wide machine.
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        for i in 0..4000u32 {
            m.consume(&branch(i % 64, true), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc < 1.2, "ipc {ipc}");
    }

    #[test]
    fn wide_config_is_faster_on_parallel_code() {
        let run = |cfg: OooConfig| {
            let mut m = OooTimingModel::new(cfg);
            let mut p = StaticPredictor::taken();
            for i in 0..8000u32 {
                let r = Reg::new(1 + (i % 16)).unwrap();
                m.consume(&alu(i % 64, r, r), &mut p, false);
            }
            m.stats().cycles
        };
        let narrow = run(OooConfig::default());
        let wide = run(OooConfig::wide());
        assert!(wide < narrow, "8-wide {wide} cycles vs 4-wide {narrow}");
    }

    #[test]
    fn stats_ipc_and_mpki() {
        let s = TimingStats {
            cycles: 1000,
            instructions: 2000,
            mispredicts: 10,
            mispredicts_regular: 4,
            ..TimingStats::default()
        };
        assert_eq!(s.ipc(), 2.0);
        assert_eq!(s.mpki(), 5.0);
        assert_eq!(s.mpki_regular(), 2.0);
        assert_eq!(TimingStats::default().ipc(), 0.0);
        assert_eq!(TimingStats::default().mpki(), 0.0);
    }
}
