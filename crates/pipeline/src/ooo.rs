//! The out-of-order superscalar timing model.
//!
//! A trace-driven window model in the style of Sniper's detailed core: it
//! consumes the emulator's [`DynInst`] stream in program order and
//! computes, per instruction, the fetch / dispatch / issue / complete /
//! commit cycles under the machine's resource constraints:
//!
//! * fetch width, with fetch-group breaks after taken branches and
//!   I-cache miss stalls;
//! * a reorder buffer that back-pressures fetch when full;
//! * register dataflow (including the condition flag as a renamed
//!   pseudo-register) and issue-width contention;
//! * functional-unit latencies per [`ExecClass`], with load latencies
//!   from the cache hierarchy;
//! * branch resolution at execute: a mispredicted branch redirects fetch
//!   at `complete + mispredict_penalty` (the paper's 10-cycle front-end
//!   refill);
//! * in-order commit at the pipeline width.
//!
//! Wrong-path instructions are not simulated; their cost is the redirect
//! bubble — the standard trace-driven approximation.

use probranch_isa::ExecClass;
use probranch_predictor::{BranchPredictor, BranchReq};

use crate::cache::MemoryHierarchy;
use crate::decode::{DecodedInst, InstTiming};
use crate::machine::{BranchEvent, BranchEventKind, DynInst, StepRecord};

/// Functional-unit latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLatencies {
    /// Simple integer ops.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// FP add/sub/conversions.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide / sqrt.
    pub fp_div: u64,
    /// Transcendentals (exp, ln, sin, cos).
    pub fp_long: u64,
    /// Store address/data (memory update happens post-commit).
    pub store: u64,
    /// Branch resolution.
    pub branch: u64,
    /// Everything else.
    pub other: u64,
}

impl Default for ExecLatencies {
    fn default() -> ExecLatencies {
        ExecLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 12,
            fp_long: 20,
            store: 1,
            branch: 1,
            other: 1,
        }
    }
}

impl ExecLatencies {
    /// Resolves the per-class latencies into a flat table indexed by
    /// [`ExecClass::index`], so the hot loop replaces an enum match with
    /// one array load. The [`ExecClass::Load`] slot is unused (loads
    /// defer to the cache hierarchy) and stays 0.
    pub fn table(&self) -> [u64; ExecClass::COUNT] {
        let mut t = [0u64; ExecClass::COUNT];
        t[ExecClass::IntAlu.index()] = self.int_alu;
        t[ExecClass::IntMul.index()] = self.int_mul;
        t[ExecClass::IntDiv.index()] = self.int_div;
        t[ExecClass::FpAdd.index()] = self.fp_add;
        t[ExecClass::FpMul.index()] = self.fp_mul;
        t[ExecClass::FpDiv.index()] = self.fp_div;
        t[ExecClass::FpLong.index()] = self.fp_long;
        t[ExecClass::Store.index()] = self.store;
        t[ExecClass::Branch.index()] = self.branch;
        t[ExecClass::Other.index()] = self.other;
        t
    }
}

/// Core configuration. Defaults model the paper's baseline: a 4-wide
/// out-of-order core with a 168-entry ROB "configured after Intel's
/// Sandy Bridge" and a 10-cycle branch misprediction penalty
/// (Section VI-B). The 8-wide configuration of Figure 8 uses
/// [`OooConfig::wide`].
#[derive(Debug, Clone)]
pub struct OooConfig {
    /// Instructions fetched/dispatched/committed per cycle.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Front-end depth in cycles (fetch to dispatch).
    pub frontend_depth: u64,
    /// Cycles to re-fill the front end after a resolved misprediction.
    pub mispredict_penalty: u64,
    /// Functional-unit latencies.
    pub latencies: ExecLatencies,
}

impl Default for OooConfig {
    fn default() -> OooConfig {
        OooConfig {
            width: 4,
            rob_size: 168,
            frontend_depth: 5,
            mispredict_penalty: 10,
            latencies: ExecLatencies::default(),
        }
    }
}

impl OooConfig {
    /// The paper's 8-wide configuration (Figure 8): 8-wide, 256-entry
    /// ROB.
    pub fn wide() -> OooConfig {
        OooConfig {
            width: 8,
            rob_size: 256,
            ..OooConfig::default()
        }
    }
}

/// One predictor-consulted conditional branch, as recorded by the
/// optional branch trace (golden-trace regression testing).
///
/// Only branches that actually query the predictor appear: PBS-directed
/// instances and filtered probabilistic branches resolve without a
/// prediction and are excluded, so the trace is exactly the predictor's
/// observable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchTraceEntry {
    /// Program counter of the branch.
    pub pc: u32,
    /// The predictor's direction guess.
    pub predicted: bool,
    /// The architecturally resolved direction.
    pub taken: bool,
    /// Whether this was a probabilistic branch.
    pub is_prob: bool,
}

/// Aggregate statistics of a timing-model run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Dynamic control-transfer instructions.
    pub dyn_branches: u64,
    /// Dynamic conditional branches (including probabilistic ones
    /// executing as regular branches).
    pub cond_branches: u64,
    /// Dynamic probabilistic jumps (all resolutions).
    pub prob_branches: u64,
    /// Probabilistic jumps steered by PBS (no predictor involvement).
    pub pbs_directed: u64,
    /// Mispredictions, total.
    pub mispredicts: u64,
    /// Mispredictions of probabilistic branches.
    pub mispredicts_prob: u64,
    /// Mispredictions of regular branches.
    pub mispredicts_regular: u64,
}

impl TimingStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per 1000 instructions.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Regular-branch mispredictions per 1000 instructions (the Figure 9
    /// interference metric).
    pub fn mpki_regular(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts_regular as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// The issue-bandwidth ring length for `cfg`: the ring may only alias
/// two cycles that can never be live at the same time. In-flight
/// instructions are bounded by the ROB, and one instruction's issue
/// cycle exceeds the window's oldest by at most the largest single
/// latency (memory, the slowest functional unit, the misprediction
/// refill) plus the front end, so the live span is bounded by
/// `rob_size * (max latency + frontend + penalty + 1)`. Rounded up to a
/// power of two for mask indexing; 64 Ki entries (256 KiB at 4 bytes
/// per slot, see [`OooTimingModel::issue_ring`]) for the default
/// 168-entry ROB with 200-cycle memory.
/// Bits of an issue-ring slot holding the per-cycle issue count; the
/// remaining 16 bits hold the cycle's epoch tag.
const RING_COUNT_BITS: u32 = 16;
/// Mask of the count field.
const RING_COUNT_MASK: u32 = (1 << RING_COUNT_BITS) - 1;
/// Mask of an (unshifted) epoch tag.
const RING_TAG_MASK: u32 = (1 << (32 - RING_COUNT_BITS)) - 1;
/// Epochs between issue-ring scrub passes: half the 16-bit tag space,
/// so at every scrub a stale slot's *wrapped* tag age equals its true
/// age (no slot can get within half a wrap of aliasing between two
/// passes) and the `age > 3` test is unambiguous.
const RING_SCRUB_EPOCHS: u64 = 1 << 15;

fn issue_ring_len(cfg: &OooConfig) -> usize {
    let l = &cfg.latencies;
    let max_exec = [
        l.int_alu, l.int_mul, l.int_div, l.fp_add, l.fp_mul, l.fp_div, l.fp_long, l.store,
        l.branch, l.other,
    ]
    .into_iter()
    .max()
    .unwrap_or(1);
    // Memory latency of the default hierarchy (the model constructs its
    // own `MemoryHierarchy::default()`).
    let max_lat = max_exec.max(crate::cache::MemLatencies::default().mem);
    let span = (cfg.rob_size as u64)
        .saturating_mul(max_lat + cfg.frontend_depth + cfg.mispredict_penalty + 1)
        .max(1);
    usize::try_from(span)
        .unwrap_or(usize::MAX / 2)
        .next_power_of_two()
}

/// The trace-driven out-of-order timing model.
#[derive(Debug, Clone)]
pub struct OooTimingModel {
    cfg: OooConfig,
    hierarchy: MemoryHierarchy,
    /// Cycle at which the next instruction can be fetched.
    fetch_cycle: u64,
    /// Instructions already fetched in `fetch_cycle`.
    fetched_in_cycle: u32,
    /// Ready cycle per architectural register + flag. Sized 64 (only
    /// 0..=32 are used) so `u8 & 63` indexing needs no bounds check.
    reg_ready: [u64; 64],
    /// Commit cycles of in-flight instructions (ROB occupancy), as a
    /// fixed-capacity ring buffer: `rob_len` entries starting at
    /// `rob_head`, capacity `cfg.rob_size` — no deque bookkeeping on the
    /// per-instruction push/pop pair.
    rob: Vec<u64>,
    rob_head: usize,
    rob_len: usize,
    /// Issue-bandwidth ring, sized at construction to a power of two
    /// covering the worst-case span of live issue cycles (see
    /// [`issue_ring_len`]) and indexed by mask. Each `u32` slot packs
    /// `epoch_tag << 16 | count`, where the epoch tag is the low 16
    /// bits of `cycle >> ring_bits` — together with the slot index that
    /// identifies the cycle a slot's count belongs to, at half the
    /// cache footprint of the previous full-cycle `u64` packing
    /// (256 KiB instead of 512 KiB per consumer for the default core).
    /// Tag aliasing (two cycles 2^16 epochs apart) is made impossible
    /// by [`scrub_issue_ring`](Self::scrub_issue_ring), which zeroes
    /// every non-live slot at least once per 2^15 epochs — a zeroed
    /// slot reads as "no issues recorded" for every future probe, which
    /// is exact for any slot whose true cycle has passed.
    issue_ring: Box<[u32]>,
    /// `issue_ring.len() - 1`.
    issue_mask: usize,
    /// `issue_ring.len().trailing_zeros()` — the epoch shift.
    ring_bits: u32,
    /// Fetch cycle at which the next [`scrub_issue_ring`]
    /// (Self::scrub_issue_ring) pass runs.
    ring_scrub_at: u64,
    /// `cfg.width` capped to the ring's 16-bit count field. Exact for
    /// every feasible core: a cycle can only reach 2^16 issues with
    /// more than 2^16 instructions in flight, i.e. `rob_size` ≥ 2^16
    /// *and* `width` ≥ 2^16 (asserted against in [`OooTimingModel::new`]).
    width_cap: u32,
    last_commit: u64,
    committed_in_commit_cycle: u32,
    stats: TimingStats,
    /// `cfg.latencies` resolved per [`ExecClass::index`] (Load slot
    /// unused — loads ask the cache hierarchy). Padded to 16 entries so
    /// `class & 15` indexing needs no bounds check.
    lat_table: [u64; 16],
    /// Per-branch (pc, predicted, actual) log; `None` unless enabled.
    trace: Option<Vec<BranchTraceEntry>>,
}

impl OooTimingModel {
    /// Creates a model with the given configuration and a default memory
    /// hierarchy.
    pub fn new(cfg: OooConfig) -> OooTimingModel {
        let ring_len = issue_ring_len(&cfg);
        assert!(
            cfg.width < 1 << 16 || cfg.rob_size < 1 << 16,
            "issue ring count field cannot express a 2^16-wide, 2^16-deep core"
        );
        OooTimingModel {
            hierarchy: MemoryHierarchy::default(),
            fetch_cycle: 0,
            fetched_in_cycle: 0,
            reg_ready: [0; 64],
            rob: vec![0; cfg.rob_size],
            rob_head: 0,
            rob_len: 0,
            // All-zero init is exact: a zero slot reads as "no issues
            // recorded at this slot's cycle yet", which the probe treats
            // identically to an unused slot — and `vec![0]` is an
            // `alloc_zeroed` of untouched pages instead of a sentinel
            // fill per model.
            issue_ring: vec![0u32; ring_len].into_boxed_slice(),
            issue_mask: ring_len - 1,
            ring_bits: ring_len.trailing_zeros(),
            ring_scrub_at: RING_SCRUB_EPOCHS << ring_len.trailing_zeros(),
            width_cap: cfg.width.min((1 << 16) - 1),
            last_commit: 0,
            committed_in_commit_cycle: 0,
            stats: TimingStats::default(),
            lat_table: {
                let mut t = [0u64; 16];
                t[..ExecClass::COUNT].copy_from_slice(&cfg.latencies.table());
                t
            },
            trace: None,
            cfg,
        }
    }

    /// Starts recording every predictor-consulted conditional branch as
    /// a [`BranchTraceEntry`]; retrieve the log with
    /// [`take_trace`](Self::take_trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded branch trace (empty if tracing was never
    /// enabled).
    pub fn take_trace(&mut self) -> Vec<BranchTraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    #[inline]
    fn issue_slot(&mut self, from: u64) -> u64 {
        let mut c = from;
        loop {
            let tag = (((c >> self.ring_bits) as u32) & RING_TAG_MASK) << RING_COUNT_BITS;
            let slot = &mut self.issue_ring[(c as usize) & self.issue_mask];
            if *slot & !RING_COUNT_MASK != tag {
                *slot = tag | 1;
                return c;
            }
            if (*slot & RING_COUNT_MASK) < self.width_cap {
                *slot += 1;
                return c;
            }
            c += 1;
        }
    }

    /// Re-zeroes every issue-ring slot whose epoch tag is outside the
    /// live window, so a slot written ≥ 2^16 epochs ago can never be
    /// misread as current once the 16-bit tags wrap.
    ///
    /// Exactness: all probe-able cycles lie in
    /// `[fetch_cycle, fetch_cycle + live span]` with the live span ≤ one
    /// ring length (the ring-sizing invariant the previous full-cycle
    /// encoding relied on too), i.e. within epochs `E ..= E + 1` of
    /// `E = fetch_cycle >> ring_bits`. Slots tagged inside a
    /// four-epoch window around `E` are preserved verbatim; everything
    /// else is architecturally dead — a zeroed slot then reads as "no
    /// issues recorded", which is exactly what a fresh probe of a
    /// passed cycle would conclude — so a pass costs one linear sweep
    /// (256 KiB) per 2^15 epochs (≥ 2 × 10^9 cycles for the default
    /// core) and changes no observable timing.
    #[cold]
    fn scrub_issue_ring(&mut self) {
        let live_base = (self.fetch_cycle >> self.ring_bits) as u32 & RING_TAG_MASK;
        for slot in self.issue_ring.iter_mut() {
            let age = (*slot >> RING_COUNT_BITS).wrapping_sub(live_base) & RING_TAG_MASK;
            if age > 3 {
                *slot = 0;
            }
        }
        self.ring_scrub_at =
            ((self.fetch_cycle >> self.ring_bits) + RING_SCRUB_EPOCHS) << self.ring_bits;
    }

    /// Consumes one dynamic instruction from the reference
    /// ([`DynInst`]-streaming) engine.
    ///
    /// `predictor` is consulted for conditional branches; when
    /// `filter_prob` is set, probabilistic branches neither access nor
    /// update the predictor and are treated as perfectly resolved — the
    /// Figure 9 interference-isolation mode.
    ///
    /// Derives the dataflow/latency metadata from the carried
    /// [`Inst`](probranch_isa::Inst) on the fly and feeds the same
    /// cycle-accounting core as
    /// [`consume_decoded`](Self::consume_decoded), so the two entry
    /// points cannot diverge.
    pub fn consume(&mut self, d: &DynInst, predictor: &mut dyn BranchPredictor, filter_prob: bool) {
        let timing = InstTiming::of(&d.inst);
        self.consume_inner(d.pc, &timing, d.branch, d.mem_addr, predictor, filter_prob);
    }

    /// Consumes one dynamic instruction from the fused engine: the
    /// predecoded metadata comes from the shared [`DecodedInst`] and the
    /// dynamic facts from the emulator's [`StepRecord`].
    ///
    /// Generic over the predictor so a concrete dispatch type (e.g.
    /// `PredictorDispatch`) monomorphizes and inlines the per-branch
    /// predict/update pair instead of paying two virtual calls.
    #[inline]
    pub fn consume_decoded<P: BranchPredictor + ?Sized>(
        &mut self,
        dec: &DecodedInst,
        rec: &StepRecord,
        predictor: &mut P,
        filter_prob: bool,
    ) {
        self.consume_inner(
            rec.pc,
            &dec.timing,
            rec.branch,
            rec.mem_addr(),
            predictor,
            filter_prob,
        );
    }

    /// The latency-resolving half shared by [`consume`](Self::consume)
    /// and [`consume_decoded`](Self::consume_decoded): asks the live
    /// memory hierarchy for the fetch stall and (for loads) the data
    /// latency, then feeds the cycle-accounting core.
    ///
    /// The replay engine calls [`consume_core`](Self::consume_core)
    /// directly instead, with latencies pre-simulated at trace-capture
    /// time — the hierarchy's evolution depends only on the pc/address
    /// stream, which the trace fixes, never on the predictor or core
    /// configuration.
    #[inline(always)]
    fn consume_inner<P: BranchPredictor + ?Sized>(
        &mut self,
        pc: u32,
        timing: &InstTiming,
        branch: Option<BranchEvent>,
        mem_addr: Option<u64>,
        predictor: &mut P,
        filter_prob: bool,
    ) {
        let istall = self.hierarchy.inst_access(pc as u64 * 8);
        // Resolving the load latency here instead of at issue is exact:
        // the issue-slot probe touches no hierarchy state, and the
        // access order the caches observe (instruction fetch, then data
        // access, per record in program order) is unchanged.
        let exec_lat = if timing.class as usize == ExecClass::Load.index() {
            let addr = mem_addr.expect("loads carry an address");
            self.hierarchy.data_access(addr)
        } else {
            self.lat_table[(timing.class & 15) as usize]
        };
        self.consume_core(pc, timing, branch, istall, exec_lat, predictor, filter_prob);
    }

    /// The per-class latency table entry for `class` (replay helper).
    #[inline(always)]
    pub(crate) fn static_latency(&self, class: u8) -> u64 {
        self.lat_table[(class & 15) as usize]
    }

    /// The cycle-accounting core: everything downstream of the memory
    /// hierarchy, with the fetch stall and the execute latency already
    /// resolved. Shared verbatim by the live engines (through
    /// [`consume_inner`](Self::consume_inner)) and the trace-replay
    /// engine, so the two paths cannot drift apart.
    // The argument list mirrors the record layout of the hot loops; a
    // grouping struct would be rebuilt per dynamic instruction.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) fn consume_core<P: BranchPredictor + ?Sized>(
        &mut self,
        pc: u32,
        timing: &InstTiming,
        branch: Option<BranchEvent>,
        istall: u64,
        exec_lat: u64,
        predictor: &mut P,
        filter_prob: bool,
    ) {
        // Epoch-tag maintenance for the u32 issue ring: at most one
        // linear sweep per 2^15 ring epochs (one predictable
        // never-taken compare per record otherwise).
        if self.fetch_cycle >= self.ring_scrub_at {
            self.scrub_issue_ring();
        }
        // ---- fetch -----------------------------------------------------------
        // Both stall conditions are data-dependent and mispredict as
        // host branches; written in conditional-move form (an I-miss
        // resets the fetch group, then a full group bumps the cycle —
        // with a reset group `0 >= width` can't fire, exactly as the
        // branchy original).
        let istalled = istall > 0;
        self.fetch_cycle += istall;
        let fic = if istalled { 0 } else { self.fetched_in_cycle };
        let group_full = fic >= self.cfg.width;
        self.fetch_cycle += group_full as u64;
        self.fetched_in_cycle = if group_full { 0 } else { fic };
        // ROB back-pressure: the instruction cannot enter until the entry
        // `rob_size` older has committed.
        if self.rob_len >= self.cfg.rob_size {
            let free_at = self.rob[self.rob_head];
            self.rob_head += 1;
            if self.rob_head == self.cfg.rob_size {
                self.rob_head = 0;
            }
            self.rob_len -= 1;
            // Written to favour conditional moves: the stall condition is
            // data-dependent and mispredicts as a branch.
            let stalled = free_at > self.fetch_cycle;
            self.fetch_cycle = if stalled { free_at } else { self.fetch_cycle };
            self.fetched_in_cycle = if stalled { 0 } else { self.fetched_in_cycle };
        }
        let fetch = self.fetch_cycle;
        self.fetched_in_cycle += 1;

        // ---- dispatch / register dataflow -----------------------------------
        // The flag pseudo-register is already folded into uses/defs.
        // Fixed-trip over all four (padded) slots: the PAD_USE_REG slot
        // is never written, so its ready cycle is always 0 and the max
        // equals the max over the live prefix — with no data-dependent
        // loop bound in the hottest path.
        let dispatch = fetch + self.cfg.frontend_depth;
        let mut ready = dispatch;
        for &r in &timing.uses {
            ready = ready.max(self.reg_ready[(r & 63) as usize]);
        }

        // ---- issue / execute --------------------------------------------------
        let issue = self.issue_slot(ready);
        let complete = issue + exec_lat;
        // Fixed-trip over both (padded) slots: PAD_DEF_REG is never
        // read, so writing its ready cycle is invisible to the dataflow.
        for &r in &timing.defs {
            self.reg_ready[(r & 63) as usize] = complete;
        }

        // ---- branch resolution -------------------------------------------------
        if let Some(ev) = branch {
            self.stats.dyn_branches += 1;
            let mispredicted = match ev.kind {
                BranchEventKind::Conditional => {
                    self.stats.cond_branches += 1;
                    self.stats.prob_branches += ev.is_prob as u64;
                    if ev.is_prob && filter_prob {
                        false // oracle-resolved, predictor untouched
                    } else {
                        let predicted =
                            predictor.predict_and_update(BranchReq::new(pc as u64, ev.taken));
                        if let Some(trace) = &mut self.trace {
                            trace.push(BranchTraceEntry {
                                pc,
                                predicted,
                                taken: ev.taken,
                                is_prob: ev.is_prob,
                            });
                        }
                        predicted != ev.taken
                    }
                }
                BranchEventKind::PbsDirected => {
                    self.stats.cond_branches += 1;
                    self.stats.prob_branches += 1;
                    self.stats.pbs_directed += 1;
                    false // direction known at fetch; no predictor access
                }
                // Direct jumps/calls resolve in the front end; returns
                // are covered by a return-address-stack model assumed
                // perfect for our call depths.
                BranchEventKind::Unconditional | BranchEventKind::Call | BranchEventKind::Ret => {
                    false
                }
            };
            // Redirect/fetch-group bookkeeping in conditional-move form:
            // `ev.taken` on a correctly predicted branch is essentially a
            // coin flip to the *host's* branch predictor, and a
            // mispredicted model branch is rare — both were costly
            // branches here. A mispredicted branch redirects fetch to
            // `complete + penalty` (the front-end refill); a correctly
            // predicted taken branch merely ends the fetch group.
            self.stats.mispredicts += mispredicted as u64;
            self.stats.mispredicts_prob += (mispredicted && ev.is_prob) as u64;
            self.stats.mispredicts_regular += (mispredicted && !ev.is_prob) as u64;
            let fg_break = !mispredicted && ev.taken;
            let redirected_fetch = if mispredicted {
                complete + self.cfg.mispredict_penalty
            } else {
                fetch + 1
            };
            let bumped = mispredicted || fg_break;
            self.fetch_cycle = if bumped {
                redirected_fetch
            } else {
                self.fetch_cycle
            };
            self.fetched_in_cycle = if bumped { 0 } else { self.fetched_in_cycle };
        }

        // ---- commit -------------------------------------------------------------
        // Commit-bandwidth bump, in conditional-move form (the cycle
        // comparison is data-dependent).
        let mut commit = complete.max(self.last_commit);
        let same_cycle = commit == self.last_commit;
        let full = same_cycle && self.committed_in_commit_cycle >= self.cfg.width;
        commit += full as u64;
        self.committed_in_commit_cycle = if same_cycle && !full {
            self.committed_in_commit_cycle + 1
        } else {
            1
        };
        self.last_commit = commit;
        let mut slot = self.rob_head + self.rob_len;
        if slot >= self.cfg.rob_size {
            slot -= self.cfg.rob_size;
        }
        self.rob[slot] = commit;
        self.rob_len += 1;
        self.stats.instructions += 1;
        // `stats.cycles` is derived from `last_commit` in `stats()`
        // rather than stored per instruction.
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> TimingStats {
        let mut s = self.stats;
        s.cycles = self.last_commit;
        s
    }

    /// The memory hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// The configuration.
    pub fn config(&self) -> &OooConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::{AluOp, CmpOp, Inst, Operand, Reg};
    use probranch_predictor::StaticPredictor;

    fn alu(pc: u32, dst: Reg, src: Reg) -> DynInst {
        DynInst {
            pc,
            inst: Inst::Alu {
                op: AluOp::Add,
                dst,
                src1: src,
                src2: Operand::imm(1),
            },
            branch: None,
            mem_addr: None,
        }
    }

    fn branch(pc: u32, taken: bool) -> DynInst {
        DynInst {
            pc,
            inst: Inst::Br {
                op: CmpOp::Lt,
                fp: false,
                lhs: Reg::R1,
                rhs: Operand::imm(0),
                target: 0,
            },
            branch: Some(crate::machine::BranchEvent {
                taken,
                kind: BranchEventKind::Conditional,
                is_prob: false,
            }),
            mem_addr: None,
        }
    }

    #[test]
    fn independent_instructions_reach_width_ipc() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        // Independent single-cycle instructions on distinct registers
        // (cycled); a 4-wide core should approach IPC 4 once the cold
        // I-cache misses are amortized.
        for i in 0..100_000u32 {
            let r = Reg::new(1 + (i % 8)).unwrap();
            m.consume(&alu(i % 64, r, r), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc > 3.5, "ipc {ipc}");
    }

    #[test]
    fn dependent_chain_is_serial() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        for i in 0..4000u32 {
            m.consume(&alu(i % 64, Reg::R1, Reg::R1), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc < 1.1, "dependent chain must serialize, ipc {ipc}");
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // Always-taken branches predicted not-taken by the static
        // predictor: every branch is a full redirect.
        let run = |taken: bool| {
            let mut m = OooTimingModel::new(OooConfig::default());
            let mut p = StaticPredictor::not_taken();
            for i in 0..2000u32 {
                m.consume(&branch(i % 64, taken), &mut p, false);
                for j in 0..3u32 {
                    let r = Reg::new(2 + j).unwrap();
                    m.consume(&alu((i * 4 + j) % 64, r, r), &mut p, false);
                }
            }
            m.stats()
        };
        let bad = run(true); // all mispredicted
        let good = run(false); // all correct
        assert_eq!(bad.mispredicts, 2000);
        assert_eq!(good.mispredicts, 0);
        assert!(
            bad.cycles > good.cycles * 3,
            "mispredicts {} cycles vs clean {} cycles",
            bad.cycles,
            good.cycles
        );
    }

    #[test]
    fn pbs_directed_branches_do_not_touch_predictor_or_mispredict() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::not_taken();
        for i in 0..100u32 {
            let mut d = branch(i % 16, true);
            d.branch = Some(crate::machine::BranchEvent {
                taken: true,
                kind: BranchEventKind::PbsDirected,
                is_prob: true,
            });
            m.consume(&d, &mut p, false);
        }
        let s = m.stats();
        assert_eq!(s.mispredicts, 0);
        assert_eq!(s.pbs_directed, 100);
        assert_eq!(s.prob_branches, 100);
    }

    #[test]
    fn filter_mode_isolates_prob_branches() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::not_taken();
        let mut d = branch(5, true);
        d.branch = Some(crate::machine::BranchEvent {
            taken: true,
            kind: BranchEventKind::Conditional,
            is_prob: true,
        });
        m.consume(&d, &mut p, true);
        let s = m.stats();
        assert_eq!(s.mispredicts, 0, "filtered prob branch cannot mispredict");
        assert_eq!(s.prob_branches, 1);
    }

    #[test]
    fn loads_hit_in_cache_after_warmup() {
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        let load = |pc: u32, addr: u64| DynInst {
            pc,
            inst: Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            branch: None,
            mem_addr: Some(addr),
        };
        m.consume(&load(0, 0x100), &mut p, false);
        let cold_cycles = m.stats().cycles;
        for i in 1..100u32 {
            m.consume(&load(i % 16, 0x100), &mut p, false);
        }
        let s = m.stats();
        assert!(s.cycles < cold_cycles + 400, "warm loads must be fast");
        assert!(m.hierarchy().l1d().hits() >= 99);
    }

    #[test]
    fn taken_branches_limit_fetch_bandwidth() {
        // All-taken, perfectly predicted branches: one fetch group per
        // branch caps IPC near 1 even on a 4-wide machine.
        let mut m = OooTimingModel::new(OooConfig::default());
        let mut p = StaticPredictor::taken();
        for i in 0..4000u32 {
            m.consume(&branch(i % 64, true), &mut p, false);
        }
        let ipc = m.stats().ipc();
        assert!(ipc < 1.2, "ipc {ipc}");
    }

    #[test]
    fn wide_config_is_faster_on_parallel_code() {
        let run = |cfg: OooConfig| {
            let mut m = OooTimingModel::new(cfg);
            let mut p = StaticPredictor::taken();
            for i in 0..8000u32 {
                let r = Reg::new(1 + (i % 16)).unwrap();
                m.consume(&alu(i % 64, r, r), &mut p, false);
            }
            m.stats().cycles
        };
        let narrow = run(OooConfig::default());
        let wide = run(OooConfig::wide());
        assert!(wide < narrow, "8-wide {wide} cycles vs 4-wide {narrow}");
    }

    #[test]
    fn issue_ring_stays_exact_across_epoch_scrubs() {
        // A tiny core gives a small ring (fast epochs); a serial
        // dependent chain on a 20-cycle divider walks the clock past
        // several scrub passes. The run's cycle count has a closed
        // form — one divide issuing every `int_div` cycles once the
        // pipeline fills — so a stale-count misread or an over-eager
        // scrub of a live slot would show up as an exact-cycle drift.
        let cfg = OooConfig {
            width: 2,
            rob_size: 1,
            latencies: ExecLatencies {
                int_div: 20,
                ..ExecLatencies::default()
            },
            ..OooConfig::default()
        };
        let div = |pc: u32| DynInst {
            pc,
            inst: Inst::Alu {
                op: AluOp::Div,
                dst: Reg::R1,
                src1: Reg::R1,
                src2: Operand::imm(3),
            },
            branch: None,
            mem_addr: None,
        };
        let run = |n: u64| {
            let mut m = OooTimingModel::new(cfg.clone());
            let mut p = StaticPredictor::taken();
            for i in 0..n {
                m.consume(&div((i % 16) as u32), &mut p, false);
            }
            (m.stats().cycles, m.issue_ring.len() as u64)
        };
        // Calibrate the chain's exact steady-state period on short
        // (scrub-free) runs…
        let (c1, ring_len) = run(10_000);
        let (c2, _) = run(20_000);
        let period = (c2 - c1) / 10_000;
        assert_eq!((c2 - c1) % 10_000, 0, "chain must be exactly periodic");
        // …then extrapolate across several scrub passes: any stale
        // count misread or over-eager scrub of a live slot breaks the
        // exact linearity.
        let scrub_span = RING_SCRUB_EPOCHS * ring_len;
        let n = (5 * scrub_span / 2) / period + 1000;
        let (cycles, _) = run(n);
        assert!(
            cycles > 2 * scrub_span,
            "run must cross scrub passes: {cycles} cycles vs {scrub_span}-cycle span"
        );
        assert_eq!(
            cycles,
            c1 + period * (n - 10_000),
            "dependent divide chain drifted across ring scrubs (period {period})"
        );
    }

    #[test]
    fn stats_ipc_and_mpki() {
        let s = TimingStats {
            cycles: 1000,
            instructions: 2000,
            mispredicts: 10,
            mispredicts_regular: 4,
            ..TimingStats::default()
        };
        assert_eq!(s.ipc(), 2.0);
        assert_eq!(s.mpki(), 5.0);
        assert_eq!(s.mpki_regular(), 2.0);
        assert_eq!(TimingStats::default().ipc(), 0.0);
        assert_eq!(TimingStats::default().mpki(), 0.0);
    }
}
