//! # probranch-mmap
//!
//! Read-only memory-mapped files for the trace store.
//!
//! The trace persistence layer (`probranch-pipeline`'s `persist`
//! module) serves warm-start loads as borrowed slices over the file
//! bytes instead of owned copies. That needs `mmap(2)`, and `mmap`
//! needs FFI — which the rest of the workspace forbids
//! (`#![forbid(unsafe_code)]` in every other crate). This crate is the
//! one place the workspace contains `unsafe`, scoped to the small
//! [`sys`](self) module that wraps the two raw calls; everything it
//! exposes is a safe, immutable byte slice.
//!
//! On targets without the wrapped call shapes (non-unix, or 32-bit
//! `off_t` ABIs) [`Mmap::open`] transparently falls back to reading the
//! file into an owned buffer: callers get the same API and the same
//! bytes, just without the zero-copy property —
//! [`Mmap::is_mapped`] reports which backing was used.
//!
//! ## Concurrent-modification contract
//!
//! A mapping reflects the underlying file, so a writer *truncating* the
//! file while it is mapped can fault the reader (`SIGBUS`). The trace
//! store never does that: trace files are published by atomic
//! temp-file + rename and never rewritten in place, so a mapping is
//! only ever taken of an immutable, fully-published file. Keep that
//! contract if you map anything else with this crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// The real `mmap(2)` wrapper. All `unsafe` in the workspace lives in
/// this module; its safety argument is spelled out per call.
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    // The workspace-wide `unsafe_code = "deny"` is overridden for this
    // module only: the FFI below is the entire reason this crate
    // exists, and its invariants are local enough to audit in one
    // screen. (The declarations target symbols every unix libc exports
    // with these exact LP64 signatures.)
    #![allow(unsafe_code)]

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x2;

    /// A read-only, private, whole-file mapping. `len` is always > 0
    /// (empty files take the owned fallback before reaching here).
    #[derive(Debug)]
    pub(crate) struct Map {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
    // bytes with no interior mutability — so shared references to it
    // may move across and be used from any thread.
    #[allow(unsafe_code)]
    unsafe impl Send for Map {}
    #[allow(unsafe_code)]
    unsafe impl Sync for Map {}

    impl Map {
        pub(crate) fn new(file: &File, len: usize) -> io::Result<Map> {
            debug_assert!(len > 0, "empty files use the owned fallback");
            // SAFETY: a fresh anonymous placement (addr = null), a
            // length the caller took from the file's metadata, a
            // read-only private mapping of a valid open fd at offset 0.
            // The fd may be closed after mmap returns; the mapping
            // keeps the pages alive.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            match std::ptr::NonNull::new(ptr.cast::<u8>()) {
                Some(ptr) => Ok(Map { ptr, len }),
                None => Err(io::Error::other("mmap returned the null page")),
            }
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes (held until Drop), never written through, and
            // the store only maps fully-published immutable files (see
            // the crate docs' concurrent-modification contract).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly the region mmap returned. No
            // slice borrowed from `as_slice` can outlive `self`.
            let rc = unsafe { munmap(self.ptr.as_ptr().cast(), self.len) };
            debug_assert_eq!(rc, 0, "munmap of a valid mapping cannot fail");
        }
    }
}

/// The backing actually holding the bytes.
#[derive(Debug)]
enum Inner {
    /// A real read-only mapping (zero-copy).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::Map),
    /// An owned read of the whole file — the fallback for targets
    /// without the wrapped mmap ABI, for empty files (which `mmap(2)`
    /// rejects), and for mapping failures.
    Owned(Vec<u8>),
}

/// An immutable, shared view of a file's bytes: memory-mapped where the
/// platform allows, an owned read everywhere else. Dereferences to
/// `&[u8]`.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Opens `path` read-only and maps (or reads) its full contents.
    ///
    /// # Errors
    ///
    /// Any I/O error from opening or reading the file. A *mapping*
    /// failure on a mappable target falls back to an owned read rather
    /// than erroring.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        Self::from_file(&file)
    }

    /// Maps (or reads) an already-open file.
    ///
    /// # Errors
    ///
    /// Any I/O error from reading the file's metadata or contents.
    pub fn from_file(file: &File) -> io::Result<Mmap> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file too large to map"))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if len > 0 {
            if let Ok(map) = sys::Map::new(file, len) {
                return Ok(Mmap {
                    inner: Inner::Mapped(map),
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        let mut reader: &File = file;
        io::Read::read_to_end(&mut reader, &mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    /// Whether the bytes are served by a real memory mapping (`true`)
    /// or by the owned-read fallback (`false`).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }

    /// The file's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Owned(v) => v,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("probranch-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&path, bytes).expect("write temp file");
        path
    }

    #[test]
    fn maps_round_trip_file_bytes() {
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tempfile("roundtrip", &payload);
        let map = Mmap::open(&path).expect("map");
        assert_eq!(&*map, &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(map.is_mapped(), "64-bit unix must serve a real mapping");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = tempfile("empty", b"");
        let map = Mmap::open(&path).expect("map");
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "empty files use the owned fallback");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_error() {
        assert!(Mmap::open(Path::new("/nonexistent/probranch-mmap-test")).is_err());
    }

    #[test]
    fn mappings_are_shareable_across_threads() {
        let payload = vec![0xA5u8; 1 << 16];
        let path = tempfile("threads", &payload);
        let map = std::sync::Arc::new(Mmap::open(&path).expect("map"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                s.spawn(move || assert!(map.iter().all(|&b| b == 0xA5)));
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
