//! Control-flow decoupling (CFD) applicability analysis — the paper's
//! second baseline technique (Sheikh, Tuck & Rotenberg, MICRO 2012;
//! paper Section II-B2, Table I).
//!
//! CFD splits a loop containing a *separable* branch into two loops: the
//! first computes branch predicates (and any data values) into a queue;
//! the second pops them to steer the control-dependent code. It fails
//! when:
//!
//! * the branch is reached through a non-inlined function call from the
//!   loop ("the compiler is unable to inline the function, and hence CFD
//!   cannot split the loop" — Swaptions, Bandit);
//! * the control-dependent code feeds values back into the code leading
//!   to the branch in later iterations (a "hard-to-split loop-carried
//!   dependence" — Photon);
//! * the branch is not inside any loop, or has no recognizable guarded
//!   region.

use std::collections::BTreeSet;

use probranch_isa::{Inst, Program, Reg};

use crate::loops::{find_loops, innermost_containing, Loop};
use crate::predication::guarded_region;
use crate::{Applicability, Inapplicable};

/// Registers holding inline random-number-generator state: the
/// registers written by the xorshift step sequence feeding each detected
/// generator root (state and scratch).
fn generator_state_regs(program: &Program) -> BTreeSet<Reg> {
    let mut regs = BTreeSet::new();
    for root in crate::taint::detect_xorshift_roots(program) {
        let start = root.saturating_sub(6);
        for pc in start..root {
            for d in program.fetch(pc).defs().iter() {
                regs.insert(d);
            }
        }
    }
    regs
}

/// The extent of the function containing `pc`: from the nearest callee
/// entry at or before `pc` to its `ret`. Returns `None` when `pc` is in
/// the main (entry) region.
fn containing_function(program: &Program, pc: u32) -> Option<(u32, u32)> {
    // Callee entries are the targets of call instructions.
    let mut entries: Vec<u32> = program
        .iter()
        .filter_map(|(_, i)| match i {
            Inst::Call { target } => Some(*target),
            _ => None,
        })
        .collect();
    entries.sort_unstable();
    entries.dedup();
    let entry = entries.iter().rev().find(|&&e| e <= pc).copied()?;
    // Function extends to its first `ret` at or after `pc`'s entry.
    let ret = (entry..program.len() as u32).find(|&p| matches!(program.fetch(p), Inst::Ret))?;
    (pc <= ret).then_some((entry, ret))
}

/// CFD applicability for the probabilistic (or any conditional) branch
/// at `branch_pc`.
pub fn analyze(program: &Program, branch_pc: u32) -> Applicability {
    let loops = find_loops(program);
    let enclosing = innermost_containing(&loops, branch_pc);

    // Branch inside a function? CFD needs the branch in the loop body
    // proper; a call boundary between loop and branch defeats the split.
    if let Some((entry, ret)) = containing_function(program, branch_pc) {
        // Is the function called from within a loop (and the branch's
        // innermost loop does not itself sit inside the function)?
        let called_from_loop = program.iter().any(|(pc, i)| {
            matches!(i, Inst::Call { target } if *target == entry)
                && innermost_containing(&loops, pc).is_some()
        });
        let branch_loop_inside_fn = enclosing.is_some_and(|l| l.head >= entry && l.latch <= ret);
        if called_from_loop && !branch_loop_inside_fn {
            return Err(Inapplicable::ReachedThroughCall);
        }
    }

    let Some(l) = enclosing else {
        return Err(Inapplicable::NotInLoop);
    };
    let region = guarded_region(program, branch_pc)?;

    // Loop-carried dependence: registers defined by the
    // control-dependent code that are read by the code leading to the
    // branch (the first split loop) in later iterations. Random-number
    // generator state is excluded: CFD's first loop hoists the draws and
    // queues the drawn values alongside the predicates, so generator
    // state never crosses the split.
    let rng_state = generator_state_regs(program);
    let region_defs: BTreeSet<Reg> = (region.start..region.end.min(l.latch + 1))
        .flat_map(|pc| program.fetch(pc).defs().iter().collect::<Vec<_>>())
        .filter(|r| !rng_state.contains(r))
        .collect();
    let pre_branch_uses: BTreeSet<Reg> = (l.head..=branch_pc)
        .flat_map(|pc| program.fetch(pc).uses().iter().collect::<Vec<_>>())
        .collect();
    if region_defs.intersection(&pre_branch_uses).next().is_some() {
        return Err(Inapplicable::LoopCarriedDependence);
    }
    Ok(())
}

/// Analyzes every probabilistic branch site; the benchmark-level Table I
/// verdict is "applicable" iff all sites are.
pub fn analyze_program(program: &Program) -> Vec<(u32, Applicability)> {
    program
        .iter()
        .filter(|(_, i)| {
            matches!(
                i,
                Inst::ProbJmp {
                    target: Some(_),
                    ..
                }
            )
        })
        .map(|(pc, _)| (pc, analyze(program, pc)))
        .collect()
}

/// Estimated dynamic-instruction overhead of applying CFD to a loop:
/// per-iteration push/pop pairs plus duplicated loop bookkeeping — the
/// cost PBS avoids ("CFD incurs overhead compared to PBS because of
/// increased loop overhead ... and additional push and pop operations").
pub fn overhead_per_iteration(num_branches: usize, data_values: usize) -> usize {
    // One push + one pop per predicate, one per queued data value, plus
    // a duplicated loop-control branch and induction update.
    2 * num_branches + 2 * data_values + 2
}

/// The innermost loop containing `pc`, for reporting.
pub fn loop_of(program: &Program, pc: u32) -> Option<Loop> {
    let loops = find_loops(program);
    innermost_containing(&loops, pc).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::parse_asm;

    #[test]
    fn separable_branch_in_loop_is_applicable() {
        let p = parse_asm(
            r"
            li r1, 0
            li r2, 0
        top:
            add r2, r2, 1
            and r3, r2, 7
            br ne, r3, 0, skip
            add r1, r1, 1
        skip:
            br lt, r2, 50, top
            halt
        ",
        )
        .unwrap();
        assert_eq!(analyze(&p, 4), Ok(()));
    }

    #[test]
    fn branch_outside_loop_is_rejected() {
        let p = parse_asm("br eq, r1, 0, 2\n nop\n halt").unwrap();
        assert_eq!(analyze(&p, 0), Err(Inapplicable::NotInLoop));
    }

    #[test]
    fn loop_carried_dependence_is_detected() {
        // The guarded region writes r2, which the pre-branch code reads
        // next iteration.
        let p = parse_asm(
            r"
        top:
            add r2, r2, 1
            br ge, r2, 100, skip
            mul r2, r2, 2
        skip:
            add r1, r1, 1
            br lt, r1, 50, top
            halt
        ",
        )
        .unwrap();
        assert_eq!(analyze(&p, 1), Err(Inapplicable::LoopCarriedDependence));
    }

    #[test]
    fn branch_in_function_called_from_loop_is_rejected() {
        let p = parse_asm(
            r"
            li r1, 0
        top:
            call f
            add r1, r1, 1
            br lt, r1, 10, top
            halt
        f:
            br eq, r2, 0, fskip
            add r3, r3, 1
        fskip:
            ret
        ",
        )
        .unwrap();
        // The branch inside f (pc 5).
        assert_eq!(analyze(&p, 5), Err(Inapplicable::ReachedThroughCall));
    }

    #[test]
    fn loop_inside_function_is_fine() {
        // A loop wholly inside a called function: CFD can split it.
        let p = parse_asm(
            r"
            call f
            halt
        f:
            li r1, 0
        ftop:
            add r1, r1, 1
            and r3, r1, 3
            br ne, r3, 0, fskip
            add r2, r2, 1
        fskip:
            br lt, r1, 20, ftop
            ret
        ",
        )
        .unwrap();
        assert_eq!(analyze(&p, 5), Ok(()));
    }

    #[test]
    fn overhead_model_is_monotone() {
        assert!(overhead_per_iteration(1, 0) < overhead_per_iteration(2, 0));
        assert!(overhead_per_iteration(1, 0) < overhead_per_iteration(1, 2));
        assert_eq!(overhead_per_iteration(1, 0), 4);
    }

    #[test]
    fn table_i_cfd_verdicts() {
        // Paper Table I: CFD applies to DOP, Greeks, Genetic, MC-integ
        // and PI; it fails for Swaptions, Photon and Bandit.
        use probranch_workloads::{all_benchmarks, Scale};
        let expected = [
            ("DOP", true),
            ("Greeks", true),
            ("Swaptions", false),
            ("Genetic", true),
            ("Photon", false),
            ("PI", true),
            ("MC-integ", true),
            ("Bandit", false),
        ];
        let mut by_name = std::collections::HashMap::new();
        for bench in all_benchmarks(Scale::Smoke, 1) {
            let verdicts = analyze_program(&bench.program());
            assert!(!verdicts.is_empty(), "{} has prob branches", bench.name());
            by_name.insert(
                bench.name().to_string(),
                verdicts.iter().all(|(_, v)| v.is_ok()),
            );
        }
        for (name, ok) in expected {
            assert_eq!(by_name[name], ok, "{name}");
        }
    }
}
