//! Natural-loop detection for the structured programs produced by the
//! `probranch` builder: a loop is identified by a backward branch
//! (conditional or unconditional) whose target precedes it; the loop
//! body is the contiguous range `[head, latch]`.
//!
//! This interval view is exact for reducible, builder-generated code
//! (all workloads), and mirrors the dynamic detection the PBS hardware
//! itself performs (Context-Table, paper Section V-C1).

use probranch_isa::{Inst, Program};

/// A detected natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// First instruction of the loop (backward-branch target).
    pub head: u32,
    /// The backward branch closing the loop.
    pub latch: u32,
}

impl Loop {
    /// Whether `pc` lies within the loop body.
    pub fn contains(&self, pc: u32) -> bool {
        (self.head..=self.latch).contains(&pc)
    }

    /// Body length in instructions.
    pub fn len(&self) -> usize {
        (self.latch - self.head + 1) as usize
    }

    /// Whether the body is empty (never true for a valid loop).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Finds all natural loops (one per distinct head, keeping the widest
/// latch), innermost-last ordering by containment.
pub fn find_loops(program: &Program) -> Vec<Loop> {
    let mut by_head: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    for (pc, inst) in program.iter() {
        let target = match inst {
            Inst::Jf { target }
            | Inst::Br { target, .. }
            | Inst::Jmp { target }
            | Inst::ProbJmp {
                target: Some(target),
                ..
            } => *target,
            _ => continue,
        };
        if target <= pc {
            let latch = by_head.entry(target).or_insert(pc);
            if pc > *latch {
                *latch = pc;
            }
        }
    }
    by_head
        .into_iter()
        .map(|(head, latch)| Loop { head, latch })
        .collect()
}

/// The innermost loop containing `pc`, if any.
pub fn innermost_containing(loops: &[Loop], pc: u32) -> Option<&Loop> {
    loops
        .iter()
        .filter(|l| l.contains(pc))
        .min_by_key(|l| l.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::parse_asm;

    #[test]
    fn simple_do_while() {
        let p = parse_asm("li r1, 0\ntop: add r1, r1, 1\n br lt, r1, 9, top\n halt").unwrap();
        let loops = find_loops(&p);
        assert_eq!(loops, vec![Loop { head: 1, latch: 2 }]);
        assert!(loops[0].contains(1) && loops[0].contains(2) && !loops[0].contains(0));
    }

    #[test]
    fn nested_loops() {
        let p = parse_asm(
            r"
        outer: li r2, 0
        inner: add r2, r2, 1
            br lt, r2, 3, inner
            add r1, r1, 1
            br lt, r1, 5, outer
            halt
        ",
        )
        .unwrap();
        let loops = find_loops(&p);
        assert_eq!(loops.len(), 2);
        let inner = innermost_containing(&loops, 1).unwrap();
        assert_eq!(inner.head, 1);
        let outer = innermost_containing(&loops, 3).unwrap();
        assert_eq!(outer.head, 0);
    }

    #[test]
    fn multiple_backward_branches_extend_latch() {
        let p = parse_asm(
            r"
        top: add r1, r1, 1
            br eq, r1, 3, top   ; continue-style
            add r2, r2, 1
            br lt, r1, 9, top   ; main latch
            halt
        ",
        )
        .unwrap();
        let loops = find_loops(&p);
        assert_eq!(loops, vec![Loop { head: 0, latch: 3 }]);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let p = parse_asm("nop\nhalt").unwrap();
        assert!(find_loops(&p).is_empty());
    }

    #[test]
    fn innermost_picks_smallest() {
        let loops = vec![Loop { head: 0, latch: 10 }, Loop { head: 2, latch: 5 }];
        assert_eq!(innermost_containing(&loops, 3).unwrap().head, 2);
        assert_eq!(innermost_containing(&loops, 8).unwrap().head, 0);
        assert!(innermost_containing(&loops, 20).is_none());
    }
}
