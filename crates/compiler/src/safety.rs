//! The PBS static safety check (paper Section V-B): "the compiler could
//! determine through static analysis whether any of the identified
//! probabilistic branches indeed compares against a constant value
//! within a single context."
//!
//! A probabilistic compare is *safe* when its right-hand operand is an
//! immediate, or a register never redefined inside the innermost loop
//! containing the branch. Unsafe branches would trip the hardware's
//! `Const-Val` demotion at run time (e.g. simulated annealing's slowly
//! decreasing temperature); the compiler can instead leave them as
//! regular branches.

use probranch_isa::{Inst, Operand, Program};

use crate::loops::{find_loops, innermost_containing};

/// The verdict for one probabilistic compare site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Safety {
    /// The comparison operand is constant within the branch's context.
    ConstantInContext,
    /// The comparison operand may change within the loop; PBS would be
    /// demoted by the `Const-Val` check (or deviate, for slowly varying
    /// conditions).
    VariesInContext,
}

/// Checks every `prob_cmp` site in the program.
pub fn check_program(program: &Program) -> Vec<(u32, Safety)> {
    let loops = find_loops(program);
    let mut out = Vec::new();
    for (pc, inst) in program.iter() {
        let Inst::ProbCmp { rhs, .. } = inst else {
            continue;
        };
        let verdict = match rhs {
            Operand::Reg(r) => {
                // Safe iff the operand is set up once, outside every
                // loop (covers thresholds initialized before the run and
                // read inside loops or called functions). A definition
                // inside any loop — e.g. simulated annealing's decaying
                // temperature — or multiple definitions is risky.
                let defs: Vec<u32> = program
                    .iter()
                    .filter(|(p, i)| *p != pc && i.defs().contains(*r))
                    .map(|(p, _)| p)
                    .collect();
                let def_in_loop = defs
                    .iter()
                    .any(|&d| innermost_containing(&loops, d).is_some());
                if def_in_loop || defs.len() > 1 {
                    Safety::VariesInContext
                } else {
                    Safety::ConstantInContext
                }
            }
            Operand::Imm(_) => Safety::ConstantInContext,
        };
        out.push((pc, verdict));
    }
    out
}

/// Whether all probabilistic compares in the program are safe.
pub fn all_safe(program: &Program) -> bool {
    check_program(program)
        .iter()
        .all(|(_, s)| *s == Safety::ConstantInContext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::parse_asm;

    #[test]
    fn immediate_condition_is_safe() {
        let p = parse_asm(
            r"
        top:
            prob_cmp lt, r3, 100
            prob_jmp -, 3
            add r1, r1, 1
            br lt, r1, 10, top
            halt
        ",
        )
        .unwrap();
        assert_eq!(check_program(&p), vec![(0, Safety::ConstantInContext)]);
        assert!(all_safe(&p));
    }

    #[test]
    fn loop_invariant_register_is_safe() {
        let p = parse_asm(
            r"
            li r9, 100
        top:
            prob_cmp lt, r3, r9
            prob_jmp -, 4
            add r1, r1, 1
            br lt, r1, 10, top
            halt
        ",
        )
        .unwrap();
        assert!(all_safe(&p));
    }

    #[test]
    fn simulated_annealing_temperature_is_flagged() {
        // The paper's canonical risky case: the comparison value decays
        // inside the loop.
        let p = parse_asm(
            r"
            li r9, 1000
        top:
            sub r9, r9, 1        ; temperature decay
            prob_cmp lt, r3, r9
            prob_jmp -, 5
            add r1, r1, 1
            br lt, r1, 10, top
            halt
        ",
        )
        .unwrap();
        assert_eq!(check_program(&p), vec![(2, Safety::VariesInContext)]);
        assert!(!all_safe(&p));
    }

    #[test]
    fn all_workloads_pass_the_safety_check() {
        // Every paper workload compares against run constants.
        use probranch_workloads::{all_benchmarks, Scale};
        for b in all_benchmarks(Scale::Smoke, 1) {
            assert!(all_safe(&b.program()), "{} must be PBS-safe", b.name());
        }
    }

    #[test]
    fn redefinition_outside_any_loop_is_flagged() {
        let p = parse_asm(
            r"
            li r9, 5
            prob_cmp lt, r3, r9
            prob_jmp -, 4
            li r9, 7
            halt
        ",
        )
        .unwrap();
        assert_eq!(check_program(&p)[0].1, Safety::VariesInContext);
    }
}
