//! Basic blocks and the control-flow graph.

use probranch_isa::{Inst, Program};

/// A basic block: a maximal straight-line instruction range
/// `[start, end)` ended by a control transfer or a leader boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block start indices.
    pub succs: Vec<u32>,
}

impl Block {
    /// Instruction indices in the block.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
}

impl Cfg {
    /// Builds the CFG. Calls are treated as fall-through edges (the
    /// callee is a separate region); `ret` and `halt` end blocks with no
    /// successors.
    pub fn build(program: &Program) -> Cfg {
        let len = program.len() as u32;
        let mut leaders = vec![false; len as usize];
        if len > 0 {
            leaders[0] = true;
        }
        for (pc, inst) in program.iter() {
            match inst {
                Inst::Jf { target }
                | Inst::Br { target, .. }
                | Inst::Jmp { target }
                | Inst::ProbJmp {
                    target: Some(target),
                    ..
                } => {
                    leaders[*target as usize] = true;
                    if pc + 1 < len {
                        leaders[(pc + 1) as usize] = true;
                    }
                }
                Inst::Call { .. } | Inst::Ret | Inst::Halt if pc + 1 < len => {
                    leaders[(pc + 1) as usize] = true;
                }
                _ => {}
            }
        }
        // Callee entries are leaders too.
        for (_, inst) in program.iter() {
            if let Inst::Call { target } = inst {
                leaders[*target as usize] = true;
            }
        }

        let starts: Vec<u32> = (0..len).filter(|&i| leaders[i as usize]).collect();
        let mut blocks = Vec::with_capacity(starts.len());
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(len);
            let last = program.fetch(end - 1);
            let mut succs = Vec::new();
            match last {
                Inst::Jmp { target } => succs.push(*target),
                Inst::Jf { target }
                | Inst::Br { target, .. }
                | Inst::ProbJmp {
                    target: Some(target),
                    ..
                } => {
                    succs.push(*target);
                    if end < len {
                        succs.push(end);
                    }
                }
                Inst::Ret | Inst::Halt => {}
                // Calls: fall through past the call (function-local CFG).
                _ => {
                    if end < len {
                        succs.push(end);
                    }
                }
            }
            blocks.push(Block { start, end, succs });
        }
        Cfg { blocks }
    }

    /// All blocks, in address order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: u32) -> Option<&Block> {
        self.blocks.iter().find(|b| b.range().contains(&pc))
    }

    /// Whether a block starting at `start` exists.
    pub fn block_at(&self, start: u32) -> Option<&Block> {
        self.blocks.iter().find(|b| b.start == start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::parse_asm;

    #[test]
    fn straight_line_is_one_block() {
        let p = parse_asm("nop\nnop\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].range(), 0..3);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn diamond_shape() {
        let p = parse_asm(
            r"
            br eq, r1, 0, else_part
            add r2, r2, 1
            jmp join
        else_part:
            add r2, r2, 2
        join:
            halt
        ",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 4);
        let entry = cfg.block_at(0).unwrap();
        assert_eq!(entry.succs, vec![3, 1]);
        let then_b = cfg.block_at(1).unwrap();
        assert_eq!(then_b.succs, vec![4]);
        let else_b = cfg.block_at(3).unwrap();
        assert_eq!(else_b.succs, vec![4]);
        assert!(cfg.block_at(4).unwrap().succs.is_empty());
    }

    #[test]
    fn loop_back_edge() {
        let p = parse_asm("top: add r1, r1, 1\n br lt, r1, 9, top\n halt").unwrap();
        let cfg = Cfg::build(&p);
        let b = cfg.block_of(1).unwrap();
        assert!(b.succs.contains(&0), "back edge to loop head");
        assert!(b.succs.contains(&2), "fall-through exit");
    }

    #[test]
    fn call_creates_leader_at_callee() {
        let p = parse_asm("call f\n halt\nf: ret").unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.block_at(2).is_some(), "callee entry is a block");
        // Call falls through in the local CFG.
        assert_eq!(cfg.block_at(0).unwrap().succs, vec![1]);
    }

    #[test]
    fn block_of_finds_containing_block() {
        let p = parse_asm("nop\nnop\nnop\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.block_of(2).unwrap().start, 0);
        assert!(cfg.block_of(99).is_none());
    }
}
