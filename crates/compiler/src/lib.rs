//! # probranch-compiler
//!
//! The software-support side of PBS (*Architectural Support for
//! Probabilistic Branches*, MICRO 2018, Sections II-B and V-B): static
//! analyses and transforms over `probranch` programs.
//!
//! * [`mod@cfg`] — basic blocks and the control-flow graph;
//! * [`loops`] — natural-loop detection (structured programs);
//! * [`taint`] — RNG-taint propagation and **automatic
//!   probabilistic-branch marking** (the paper's "let the compiler track
//!   the locations where random numbers are generated"), including
//!   pattern-based detection of the inline xorshift64\* generator;
//! * [`predication`] — GCC-style if-conversion: applicability rules and
//!   the `cmov` transform (the paper's first baseline, Table I);
//! * [`cfd`] — control-flow-decoupling applicability analysis (the
//!   paper's second baseline, Table I);
//! * [`safety`] — the PBS static safety check: is the comparison operand
//!   constant within its loop context (Section V-B)?

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfd;
pub mod cfg;
pub mod loops;
pub mod predication;
pub mod safety;
pub mod taint;

/// Why a baseline technique cannot be applied to a branch
/// (paper Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inapplicable {
    /// The guarded region contains a function call (not if-convertible;
    /// defeats CFD's loop split when the branch is inside the callee).
    ContainsCall,
    /// The guarded region contains nested control flow (GCC fails to
    /// if-convert, e.g. Genetic's nested bit-flip if).
    NestedControl,
    /// The guarded region accesses memory (speculative stores are unsafe
    /// and speculative loads may fault).
    ContainsStore,
    /// The probabilistic value is consumed inside the region
    /// (Category-2): if-conversion would unconditionally execute the
    /// consumer.
    UsesProbValue,
    /// The region is too large for profitable if-conversion.
    RegionTooLarge,
    /// The branch is reached through a non-inlined function call from
    /// the loop (CFD cannot split the loop; Swaptions, Bandit).
    ReachedThroughCall,
    /// The control-dependent code carries a dependence into the next
    /// iteration's pre-branch code (CFD cannot separate; Photon).
    LoopCarriedDependence,
    /// The branch is not inside any loop (CFD decouples loops only).
    NotInLoop,
    /// The branch has no recognizable single-exit guarded region.
    IrregularRegion,
}

impl std::fmt::Display for Inapplicable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Inapplicable::ContainsCall => "guarded region contains a call",
            Inapplicable::NestedControl => "guarded region contains nested control flow",
            Inapplicable::ContainsStore => "guarded region accesses memory",
            Inapplicable::UsesProbValue => "probabilistic value is used inside the region",
            Inapplicable::RegionTooLarge => "region too large for profitable if-conversion",
            Inapplicable::ReachedThroughCall => "branch reached through a non-inlined call",
            Inapplicable::LoopCarriedDependence => {
                "control-dependent code carries a loop dependence"
            }
            Inapplicable::NotInLoop => "branch is not inside a loop",
            Inapplicable::IrregularRegion => "no single-exit guarded region",
        };
        f.write_str(s)
    }
}

/// The verdict of an applicability analysis.
pub type Applicability = Result<(), Inapplicable>;
