//! If-conversion (predication) — the paper's first baseline technique
//! (Section II-B1, Table I).
//!
//! [`analyze`] applies GCC-like applicability rules to the guarded
//! region of a forward conditional branch; [`if_convert`] performs the
//! transform for if-then hammocks, materializing the predicate into a
//! register and replacing each guarded definition with a `cmov` merge.
//! [`analyze_program`] evaluates every probabilistic branch of a
//! workload, producing the per-benchmark verdicts of Table I.

use probranch_isa::{AluOp, CmpOp, Inst, Operand, Program, Reg};

use crate::{Applicability, Inapplicable};

/// Maximum region size (instructions) for profitable if-conversion.
pub const MAX_REGION: usize = 8;

/// The guarded region of a skip-style forward branch at `branch_pc`:
/// the instructions executed only when the branch is *not taken*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First instruction of the region (`branch_pc + 1`).
    pub start: u32,
    /// One past the last region instruction (the branch target).
    pub end: u32,
}

/// Identifies the guarded region of the conditional branch at
/// `branch_pc` (must be `br`, `jf` or a jumping `prob_jmp` with a
/// forward target).
pub fn guarded_region(program: &Program, branch_pc: u32) -> Result<Region, Inapplicable> {
    let inst = program
        .get(branch_pc)
        .ok_or(Inapplicable::IrregularRegion)?;
    let target = match inst {
        Inst::Br { target, .. } | Inst::Jf { target } => *target,
        Inst::ProbJmp {
            target: Some(target),
            ..
        } => *target,
        _ => return Err(Inapplicable::IrregularRegion),
    };
    if target <= branch_pc {
        return Err(Inapplicable::IrregularRegion);
    }
    Ok(Region {
        start: branch_pc + 1,
        end: target,
    })
}

/// The probabilistic registers of the branch at `branch_pc` (the
/// `PROB_CMP` register plus any `PROB_JMP` registers), or the condition
/// registers for a regular branch.
fn condition_regs(program: &Program, branch_pc: u32) -> Vec<Reg> {
    let mut regs = Vec::new();
    match program.fetch(branch_pc) {
        Inst::Br { lhs, rhs, .. } => {
            regs.push(*lhs);
            if let Operand::Reg(r) = rhs {
                regs.push(*r);
            }
        }
        Inst::Jf { .. } | Inst::ProbJmp { .. } => {
            // Walk back to the controlling compare (builder code places
            // it within the preceding few instructions).
            let mut pc = branch_pc;
            while pc > 0 {
                pc -= 1;
                match program.fetch(pc) {
                    Inst::Cmp { lhs, .. } => {
                        regs.push(*lhs);
                        break;
                    }
                    Inst::ProbCmp { prob, .. } => {
                        regs.push(*prob);
                        break;
                    }
                    Inst::ProbJmp {
                        prob: Some(p),
                        target: None,
                    } => regs.push(*p),
                    _ => break,
                }
            }
            if let Inst::ProbJmp { prob: Some(p), .. } = program.fetch(branch_pc) {
                regs.push(*p);
            }
        }
        _ => {}
    }
    regs
}

/// GCC-style if-conversion applicability for the branch at `branch_pc`.
pub fn analyze(program: &Program, branch_pc: u32) -> Applicability {
    let region = guarded_region(program, branch_pc)?;
    let len = (region.end - region.start) as usize;
    if len > MAX_REGION {
        return Err(Inapplicable::RegionTooLarge);
    }
    let cond = condition_regs(program, branch_pc);
    for pc in region.start..region.end {
        let inst = program.fetch(pc);
        match inst {
            Inst::Call { .. } | Inst::Ret => return Err(Inapplicable::ContainsCall),
            Inst::Load { .. } | Inst::Store { .. } => return Err(Inapplicable::ContainsStore),
            Inst::Br { .. }
            | Inst::Jf { .. }
            | Inst::Jmp { .. }
            | Inst::ProbJmp {
                target: Some(_), ..
            } => return Err(Inapplicable::NestedControl),
            _ => {}
        }
        if inst.uses().iter().any(|u| cond.contains(&u)) {
            return Err(Inapplicable::UsesProbValue);
        }
    }
    Ok(())
}

/// Analyzes every probabilistic branch site; the benchmark-level Table I
/// verdict is "applicable" iff all sites are.
pub fn analyze_program(program: &Program) -> Vec<(u32, Applicability)> {
    program
        .iter()
        .filter(|(_, i)| {
            matches!(
                i,
                Inst::ProbJmp {
                    target: Some(_),
                    ..
                }
            )
        })
        .map(|(pc, _)| (pc, analyze(program, pc)))
        .collect()
}

/// Finds registers never referenced by the program, usable as transform
/// temporaries.
fn free_regs(program: &Program) -> Vec<Reg> {
    let mut used = [false; 32];
    for (_, inst) in program.iter() {
        for r in inst.defs().iter().chain(inst.uses().iter()) {
            used[r.index()] = true;
        }
    }
    Reg::all().filter(|r| !used[r.index()]).collect()
}

/// Emits instructions computing `dst = (lhs op rhs) as u64` (1 when the
/// branch would be taken). Supports the predicates our workloads use;
/// floating-point `Eq`/`Ne` are rejected.
fn materialize_predicate(
    out: &mut Vec<Inst>,
    dst: Reg,
    scratch: Reg,
    op: CmpOp,
    fp: bool,
    lhs: Reg,
    rhs: Operand,
) -> Result<(), Inapplicable> {
    if fp {
        let rhs = match rhs {
            Operand::Reg(r) => r,
            Operand::Imm(_) => return Err(Inapplicable::IrregularRegion),
        };
        // sign(a - b) = 1 iff a < b for the NaN-free values in play.
        let (a, b, negate) = match op {
            CmpOp::Lt => (lhs, rhs, false),
            CmpOp::Gt => (rhs, lhs, false),
            CmpOp::Ge => (lhs, rhs, true),
            CmpOp::Le => (rhs, lhs, true),
            CmpOp::Eq | CmpOp::Ne => return Err(Inapplicable::IrregularRegion),
        };
        out.push(Inst::FpBin {
            op: probranch_isa::FpBinOp::Sub,
            dst: scratch,
            src1: a,
            src2: b,
        });
        out.push(Inst::Alu {
            op: AluOp::Shr,
            dst,
            src1: scratch,
            src2: Operand::Imm(63),
        });
        if negate {
            out.push(Inst::Alu {
                op: AluOp::Xor,
                dst,
                src1: dst,
                src2: Operand::Imm(1),
            });
        }
    } else {
        let (a, b, negate) = match op {
            CmpOp::Lt => (Some((lhs, rhs)), None, false),
            CmpOp::Ge => (Some((lhs, rhs)), None, true),
            CmpOp::Gt | CmpOp::Le => (None, Some((lhs, rhs)), matches!(op, CmpOp::Le)),
            CmpOp::Eq | CmpOp::Ne => {
                // |a - b| <u 1
                out.push(Inst::Alu {
                    op: AluOp::Sub,
                    dst: scratch,
                    src1: lhs,
                    src2: rhs,
                });
                out.push(Inst::Alu {
                    op: AluOp::Sltu,
                    dst,
                    src1: scratch,
                    src2: Operand::Imm(1),
                });
                if op == CmpOp::Ne {
                    out.push(Inst::Alu {
                        op: AluOp::Xor,
                        dst,
                        src1: dst,
                        src2: Operand::Imm(1),
                    });
                }
                return Ok(());
            }
        };
        if let Some((l, r)) = a {
            out.push(Inst::Alu {
                op: AluOp::Slt,
                dst,
                src1: l,
                src2: r,
            });
        } else if let Some((l, r)) = b {
            // Gt/Le need swapped operands, which requires rhs in a register.
            let r = match r {
                Operand::Reg(reg) => reg,
                Operand::Imm(v) => {
                    out.push(Inst::Li {
                        dst: scratch,
                        imm: v as u64,
                    });
                    scratch
                }
            };
            out.push(Inst::Alu {
                op: AluOp::Slt,
                dst,
                src1: r,
                src2: Operand::Reg(l),
            });
        }
        if negate {
            out.push(Inst::Alu {
                op: AluOp::Xor,
                dst,
                src1: dst,
                src2: Operand::Imm(1),
            });
        }
    }
    Ok(())
}

/// If-converts the branch at `branch_pc` (an if-then hammock), returning
/// the transformed program.
///
/// The guarded definitions are merged with `cmov`: for each register `d`
/// defined in the region, the original value is saved before the region
/// and restored when the (materialized) branch predicate is 1.
///
/// # Errors
///
/// Any [`Inapplicable`] reason from [`analyze`], or transform-specific
/// limits (not enough free temporary registers).
pub fn if_convert(program: &Program, branch_pc: u32) -> Result<Program, Inapplicable> {
    analyze(program, branch_pc)?;
    let region = guarded_region(program, branch_pc)?;
    let (op, fp, lhs, rhs) = match *program.fetch(branch_pc) {
        Inst::Br {
            op, fp, lhs, rhs, ..
        } => (op, fp, lhs, rhs),
        // jf/prob_jmp would need the paired compare; restrict the
        // transform to fused branches (analysis still covers all forms).
        _ => return Err(Inapplicable::IrregularRegion),
    };
    // Registers defined inside the region.
    let mut defs: Vec<Reg> = Vec::new();
    for pc in region.start..region.end {
        for d in program.fetch(pc).defs().iter() {
            if !defs.contains(&d) {
                defs.push(d);
            }
        }
    }
    let free = free_regs(program);
    if free.len() < defs.len() + 2 {
        return Err(Inapplicable::RegionTooLarge);
    }
    let pred = free[0];
    let scratch = free[1];
    let saves = &free[2..2 + defs.len()];

    // Build the new instruction sequence with an old-pc -> new-pc map.
    let mut new_insts: Vec<Inst> = Vec::with_capacity(program.len() + 8);
    let mut map: Vec<u32> = Vec::with_capacity(program.len() + 1);
    for (pc, inst) in program.iter() {
        map.push(new_insts.len() as u32);
        if pc == branch_pc {
            // Predicate + saves replace the branch.
            materialize_predicate(&mut new_insts, pred, scratch, op, fp, lhs, rhs)?;
            for (d, s) in defs.iter().zip(saves) {
                new_insts.push(Inst::Mov { dst: *s, src: *d });
            }
        } else if pc == region.end {
            // Merge point: restore saved values where the branch would
            // have skipped the region.
            for (d, s) in defs.iter().zip(saves) {
                new_insts.push(Inst::CMov {
                    dst: *d,
                    cond: pred,
                    if_true: *s,
                    if_false: *d,
                });
            }
            new_insts.push(*inst);
        } else {
            new_insts.push(*inst);
        }
    }
    map.push(new_insts.len() as u32);
    // Retarget all control transfers through the map.
    for inst in &mut new_insts {
        if let Some(t) = inst.target() {
            inst.set_target(map[t as usize]);
        }
    }
    Program::new(new_insts).map_err(|_| Inapplicable::IrregularRegion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::parse_asm;

    fn guarded_inc() -> Program {
        parse_asm(
            r"
            li r1, 0
            li r2, 0
        top:
            add r2, r2, 1
            and r3, r2, 7
            br ne, r3, 0, skip
            add r1, r1, 1
            mul r1, r1, 3
        skip:
            br lt, r2, 50, top
            out r1, 0
            halt
        ",
        )
        .unwrap()
    }

    #[test]
    fn analyze_accepts_simple_hammock() {
        let p = guarded_inc();
        assert_eq!(analyze(&p, 4), Ok(()));
    }

    #[test]
    fn analyze_rejects_calls_stores_and_nesting() {
        let p = parse_asm("br eq, r1, 0, 3\n call 5\n nop\n halt\n nop\nf: ret").unwrap();
        assert_eq!(analyze(&p, 0), Err(Inapplicable::ContainsCall));
        let p = parse_asm("br eq, r1, 0, 2\n st r1, (r2)\n halt").unwrap();
        assert_eq!(analyze(&p, 0), Err(Inapplicable::ContainsStore));
        let p = parse_asm("br eq, r1, 0, 3\n br eq, r2, 0, 2\n nop\n halt").unwrap();
        assert_eq!(analyze(&p, 0), Err(Inapplicable::NestedControl));
    }

    #[test]
    fn analyze_rejects_backward_and_large_regions() {
        let p = parse_asm("top: nop\n br eq, r1, 0, top\n halt").unwrap();
        assert_eq!(analyze(&p, 1), Err(Inapplicable::IrregularRegion));
        let mut src = String::from("br eq, r1, 0, 10\n");
        for _ in 0..9 {
            src.push_str("add r2, r2, 1\n");
        }
        src.push_str("halt");
        let p = parse_asm(&src).unwrap();
        assert_eq!(analyze(&p, 0), Err(Inapplicable::RegionTooLarge));
    }

    #[test]
    fn analyze_rejects_category2_value_use() {
        let p = parse_asm(
            r"
            prob_fcmp le, r3, r9
            prob_jmp -, 4
            fadd r1, r1, r3
            nop
            halt
        ",
        )
        .unwrap();
        assert_eq!(analyze(&p, 1), Err(Inapplicable::UsesProbValue));
    }

    #[test]
    fn if_convert_preserves_behaviour() {
        let p = guarded_inc();
        let converted = if_convert(&p, 4).expect("convertible");
        assert!(converted.len() > p.len());
        // The guarded branch is gone; only the loop branch remains.
        let (_, total) = converted.branch_counts();
        assert_eq!(total, 1);
        let a = probranch_pipeline::run_functional(&p, None, 100_000).unwrap();
        let b = probranch_pipeline::run_functional(&converted, None, 100_000).unwrap();
        assert_eq!(a.output(0), b.output(0));
    }

    #[test]
    fn if_convert_fp_branch_preserves_behaviour() {
        let p = parse_asm(
            r"
            li r1, 0
            li r2, 0
            lif_unused: nop
        top:
            add r2, r2, 1
            itof r3, r2
            itof r4, r1
            fbr lt, r3, r4, skip
            add r1, r1, 2
        skip:
            br lt, r2, 30, top
            out r1, 0
            halt
        ",
        )
        .unwrap();
        let converted = if_convert(&p, 6).expect("convertible");
        let a = probranch_pipeline::run_functional(&p, None, 100_000).unwrap();
        let b = probranch_pipeline::run_functional(&converted, None, 100_000).unwrap();
        assert_eq!(a.output(0), b.output(0));
    }

    #[test]
    fn table_i_predication_verdicts() {
        // Paper Table I: predication applies to DOP, MC-integ and PI
        // only ("the GNU C compiler fails to if-convert the
        // probabilistic branches for five of the eight benchmarks").
        use probranch_workloads::{all_benchmarks, Scale};
        let expected = [
            ("DOP", true),
            ("Greeks", false),
            ("Swaptions", false),
            ("Genetic", false),
            ("Photon", false),
            ("MC-integ", true),
            ("PI", true),
            ("Bandit", false),
        ];
        for (bench, (name, ok)) in all_benchmarks(Scale::Smoke, 1).iter().zip(expected) {
            assert_eq!(bench.name(), name);
            let verdicts = analyze_program(&bench.program());
            assert!(!verdicts.is_empty(), "{name} has prob branches");
            let all_ok = verdicts.iter().all(|(_, v)| v.is_ok());
            assert_eq!(all_ok, ok, "{name}: {verdicts:?}");
        }
    }
}
