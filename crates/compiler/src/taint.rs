//! RNG-taint analysis and automatic probabilistic-branch marking.
//!
//! Paper Section V-B: "The idea is to let the compiler track the
//! location(s) in the code where random numbers are generated. By
//! tracing the instructions that depend on the random value, the
//! compiler checks whether any of the probabilistic derivatives control
//! a branch instruction, and, if appropriate, encode the instruction
//! accordingly as a probabilistic branch."
//!
//! Roots are either supplied explicitly or found by
//! [`detect_xorshift_roots`], which pattern-matches the inline
//! xorshift64\* generator all workloads use.

use std::collections::BTreeSet;

use probranch_isa::{CmpOp, Inst, Operand, Program, Reg};

/// Finds instructions producing fresh random values by matching the
/// xorshift64\* output multiply: `shr t, s, 27; xor s, s, t; mul out, s, _`.
pub fn detect_xorshift_roots(program: &Program) -> Vec<u32> {
    let insts = program.insts();
    let mut roots = Vec::new();
    for pc in 2..insts.len() {
        let (a, b, c) = (&insts[pc - 2], &insts[pc - 1], &insts[pc]);
        let (
            Inst::Alu {
                op: shr_op,
                dst: t,
                src1: s1,
                src2: Operand::Imm(27),
            },
            Inst::Alu {
                op: xor_op,
                dst: s2,
                src1: s3,
                src2: Operand::Reg(t2),
            },
            Inst::Alu {
                op: mul_op,
                src1: s4,
                ..
            },
        ) = (a, b, c)
        else {
            continue;
        };
        if *shr_op == probranch_isa::AluOp::Shr
            && *xor_op == probranch_isa::AluOp::Xor
            && *mul_op == probranch_isa::AluOp::Mul
            && t == t2
            && s1 == s2
            && s2 == s3
            && s3 == s4
        {
            roots.push(pc as u32);
        }
    }
    roots
}

/// The result of taint propagation.
#[derive(Debug, Clone)]
pub struct Taint {
    /// Registers that may carry random-derived values anywhere in the
    /// program (flow-insensitive over-approximation).
    pub regs: BTreeSet<Reg>,
    /// Whether random-derived values may reach memory.
    pub memory: bool,
}

/// Flow-insensitive taint propagation from root definitions.
///
/// Conservative: a register is tainted if *any* instruction may write a
/// random-derived value to it; memory is a single abstract cell.
pub fn propagate(program: &Program, roots: &[u32]) -> Taint {
    let mut regs: BTreeSet<Reg> = BTreeSet::new();
    for &r in roots {
        if let Some(inst) = program.get(r) {
            for d in inst.defs().iter() {
                regs.insert(d);
            }
        }
    }
    let mut memory = false;
    loop {
        let mut changed = false;
        for (pc, inst) in program.iter() {
            if roots.contains(&pc) {
                continue;
            }
            let input_tainted = inst.uses().iter().any(|u| regs.contains(&u))
                || (memory && matches!(inst, Inst::Load { .. }));
            if !input_tainted {
                continue;
            }
            if matches!(inst, Inst::Store { .. }) && !memory {
                memory = true;
                changed = true;
            }
            for d in inst.defs().iter() {
                if regs.insert(d) {
                    changed = true;
                }
            }
        }
        if !changed {
            return Taint { regs, memory };
        }
    }
}

/// A conditional branch found to be controlled by a random-derived
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbCandidate {
    /// PC of the controlling compare (`cmp`) when the branch is a
    /// `cmp`/`jf` pair, or of the fused branch itself.
    pub cmp_pc: u32,
    /// PC of the jump.
    pub jmp_pc: u32,
    /// The register carrying the probabilistic value.
    pub prob_reg: Reg,
}

/// Finds conditional branches whose condition depends on tainted values.
/// Both fused (`br`) and split (`cmp` + `jf`) forms are recognized;
/// already-probabilistic branches are skipped.
pub fn find_candidates(program: &Program, taint: &Taint) -> Vec<ProbCandidate> {
    let mut out = Vec::new();
    let insts = program.insts();
    for (pc, inst) in program.iter() {
        match *inst {
            Inst::Br { lhs, rhs, .. } => {
                let prob = pick_prob_reg(taint, lhs, rhs);
                if let Some(prob_reg) = prob {
                    out.push(ProbCandidate {
                        cmp_pc: pc,
                        jmp_pc: pc,
                        prob_reg,
                    });
                }
            }
            Inst::Cmp { lhs, rhs, .. } => {
                // The flag consumer is the next `jf` (builder-generated
                // code always pairs them adjacently).
                if let Some(Inst::Jf { .. }) = insts.get(pc as usize + 1) {
                    if let Some(prob_reg) = pick_prob_reg(taint, lhs, rhs) {
                        out.push(ProbCandidate {
                            cmp_pc: pc,
                            jmp_pc: pc + 1,
                            prob_reg,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn pick_prob_reg(taint: &Taint, lhs: Reg, rhs: Operand) -> Option<Reg> {
    if taint.regs.contains(&lhs) {
        Some(lhs)
    } else if let Operand::Reg(r) = rhs {
        taint.regs.contains(&r).then_some(r)
    } else {
        None
    }
}

/// The automatic marking pass: rewrites tainted `cmp`/`jf` pairs into
/// `prob_cmp`/`prob_jmp`. Fused `br` candidates are left untouched (the
/// ISA's probabilistic form is a compare/jump pair; a production
/// compiler would unfuse first) and reported by [`find_candidates`].
///
/// The transform is 1:1 in instruction count, so no retargeting is
/// needed.
pub fn mark_probabilistic(program: &Program, taint: &Taint) -> Program {
    let mut insts = program.insts().to_vec();
    for cand in find_candidates(program, taint) {
        if cand.cmp_pc == cand.jmp_pc {
            continue; // fused form: skip
        }
        let Inst::Cmp { op, fp, lhs, rhs } = insts[cand.cmp_pc as usize] else {
            continue;
        };
        let Inst::Jf { target } = insts[cand.jmp_pc as usize] else {
            continue;
        };
        // PROB_CMP's probabilistic register sits on the left; swap the
        // predicate if the tainted value is the right operand.
        let (op, prob, rhs) = if taint.regs.contains(&lhs) {
            (op, lhs, rhs)
        } else {
            let Operand::Reg(r) = rhs else { continue };
            (op.swapped(), r, Operand::Reg(lhs))
        };
        let _: CmpOp = op;
        insts[cand.cmp_pc as usize] = Inst::ProbCmp { op, fp, prob, rhs };
        insts[cand.jmp_pc as usize] = Inst::ProbJmp {
            prob: None,
            target: Some(target),
        };
    }
    Program::new(insts).expect("1:1 rewrite preserves validity")
}

/// Test-only access to the workload RNG emitter without a dependency
/// cycle: a minimal re-implementation of the xorshift sequence the
/// detector matches.
#[cfg(test)]
pub(crate) fn test_rng() -> TestRng {
    TestRng
}

#[cfg(test)]
pub(crate) struct TestRng;

#[cfg(test)]
impl TestRng {
    pub fn init(&self, b: &mut probranch_isa::ProgramBuilder, seed: u64) {
        b.li(Reg::R24, seed as i64);
        b.li(Reg::R25, 0x2545F4914F6CDD1Du64 as i64);
        b.lif(Reg::R26, 1.0 / (1u64 << 53) as f64);
    }

    pub fn next_f64(&self, b: &mut probranch_isa::ProgramBuilder, out: Reg) {
        b.shr(Reg::R27, Reg::R24, 12)
            .xor(Reg::R24, Reg::R24, Reg::R27);
        b.shl(Reg::R27, Reg::R24, 25)
            .xor(Reg::R24, Reg::R24, Reg::R27);
        b.shr(Reg::R27, Reg::R24, 27)
            .xor(Reg::R24, Reg::R24, Reg::R27);
        b.mul(out, Reg::R24, Reg::R25);
        b.shr(out, out, 11);
        b.itof(out, out);
        b.fmul(out, out, Reg::R26);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probranch_isa::{parse_asm, ProgramBuilder};

    /// A PI-like kernel written with *regular* branches and a cmp/jf
    /// pair, to exercise auto-marking.
    fn unmarked_kernel() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let skip = b.label("skip");
        let rng = crate::taint::test_rng();
        rng.init(&mut b, 99);
        b.li(Reg::R1, 0).li(Reg::R2, 0).lif(Reg::R10, 0.5);
        b.bind(top);
        rng.next_f64(&mut b, Reg::R3);
        b.fcmp(CmpOp::Ge, Reg::R3, Reg::R10);
        b.jf(skip);
        b.add(Reg::R1, Reg::R1, 1);
        b.bind(skip);
        b.add(Reg::R2, Reg::R2, 1);
        b.br(CmpOp::Lt, Reg::R2, 500, top);
        b.out(Reg::R1, 0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn detects_xorshift_roots() {
        let p = unmarked_kernel();
        let roots = detect_xorshift_roots(&p);
        assert_eq!(roots.len(), 1, "one inline generator: {roots:?}");
    }

    #[test]
    fn taint_reaches_condition_register() {
        let p = unmarked_kernel();
        let roots = detect_xorshift_roots(&p);
        let taint = propagate(&p, &roots);
        assert!(taint.regs.contains(&Reg::R3), "the drawn value is tainted");
        assert!(!taint.regs.contains(&Reg::R2), "the loop counter is not");
        assert!(
            !taint.regs.contains(&Reg::R1),
            "the hit counter is control- not data-dependent"
        );
        assert!(!taint.memory);
    }

    #[test]
    fn finds_the_probabilistic_candidate_only() {
        let p = unmarked_kernel();
        let taint = propagate(&p, &detect_xorshift_roots(&p));
        let cands = find_candidates(&p, &taint);
        assert_eq!(cands.len(), 1, "{cands:?}");
        assert_eq!(cands[0].prob_reg, Reg::R3);
        assert_eq!(cands[0].jmp_pc, cands[0].cmp_pc + 1);
    }

    #[test]
    fn marking_transform_is_functionally_identical() {
        let p = unmarked_kernel();
        let taint = propagate(&p, &detect_xorshift_roots(&p));
        let marked = mark_probabilistic(&p, &taint);
        assert_eq!(
            marked.branch_counts().0,
            1,
            "one probabilistic branch after marking"
        );
        assert_eq!(p.branch_counts().0, 0);
        // Functional equivalence without PBS hardware.
        let a = probranch_pipeline::run_functional(&p, None, 1_000_000).unwrap();
        let b = probranch_pipeline::run_functional(&marked, None, 1_000_000).unwrap();
        assert_eq!(a.output(0), b.output(0));
        // And the marked version engages PBS.
        let c = probranch_pipeline::run_functional(&marked, Some(Default::default()), 1_000_000)
            .unwrap();
        assert!(c.pbs.unwrap().directed > 400);
    }

    #[test]
    fn taint_flows_through_memory() {
        let p = parse_asm(
            r"
            shr r2, r1, 27
            xor r1, r1, r2
            mul r3, r1, r4
            st r3, (r5)
            ld r6, (r5)
            cmp lt, r6, 10
            jf 7
            halt
        ",
        )
        .unwrap();
        let roots = detect_xorshift_roots(&p);
        assert_eq!(roots, vec![2]);
        let taint = propagate(&p, &roots);
        assert!(taint.memory);
        assert!(
            taint.regs.contains(&Reg::R6),
            "load from tainted memory is tainted"
        );
        assert_eq!(find_candidates(&p, &taint).len(), 1);
    }

    #[test]
    fn swapped_operand_marking() {
        // Tainted value on the *right* of the compare: the predicate
        // must be swapped so the prob register lands on the left.
        let p = parse_asm(
            r"
            shr r2, r1, 27
            xor r1, r1, r2
            mul r3, r1, r4
            cmp lt, r9, r3
            jf 6
            nop
            halt
        ",
        )
        .unwrap();
        let taint = propagate(&p, &detect_xorshift_roots(&p));
        let marked = mark_probabilistic(&p, &taint);
        match marked.fetch(3) {
            Inst::ProbCmp { op, prob, rhs, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*prob, Reg::R3);
                assert_eq!(*rhs, Operand::Reg(Reg::R9));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
