//! # probranch
//!
//! A full reproduction of **Architectural Support for Probabilistic
//! Branches** (Adileh, Lilja, Eeckhout — MICRO 2018) as a Rust
//! workspace: the PBS hardware unit, its ISA extension, the baseline
//! branch predictors, a cycle-level out-of-order simulator, the eight
//! probabilistic workloads, the compiler-side analyses, and a benchmark
//! harness regenerating every table and figure of the paper.
//!
//! This umbrella crate re-exports the public API of each subsystem:
//!
//! * [`isa`] — the instruction set with `PROB_CMP`/`PROB_JMP`
//!   ([`probranch_isa`]);
//! * [`rng`] — deterministic random-number substrate ([`probranch_rng`]);
//! * [`predictor`] — 1 KB tournament and 8 KB TAGE-SC-L baselines
//!   ([`probranch_predictor`]);
//! * [`pbs`] — the paper's contribution: Prob-BTB, SwapTable,
//!   Prob-in-Flight, Context-Table ([`probranch_core`]);
//! * [`pipeline`] — functional emulator + out-of-order timing model
//!   ([`probranch_pipeline`]);
//! * [`workloads`] — DOP, Greeks, Swaptions, Genetic, Photon, MC-integ,
//!   PI, Bandit ([`probranch_workloads`]);
//! * [`compiler`] — taint marking, predication, CFD, safety analyses
//!   ([`probranch_compiler`]);
//! * [`stats`] — summary statistics and the randomness battery
//!   ([`probranch_stats`]);
//! * [`harness`] — the deterministic parallel experiment engine driving
//!   all sweeps ([`probranch_harness`]).
//!
//! ## Quickstart
//!
//! ```
//! use probranch::prelude::*;
//!
//! // Build the paper's PI workload and simulate it with and without PBS.
//! let pi = Pi::new(Scale::Smoke, 42);
//! let base = simulate(&pi.program(), &SimConfig::default())?;
//! let pbs = simulate(&pi.program(), &SimConfig::default().with_pbs())?;
//! assert!(pbs.timing.mpki() < base.timing.mpki());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use probranch_compiler as compiler;
pub use probranch_core as pbs;
pub use probranch_harness as harness;
pub use probranch_isa as isa;
pub use probranch_pipeline as pipeline;
pub use probranch_predictor as predictor;
pub use probranch_rng as rng;
pub use probranch_stats as stats;
pub use probranch_workloads as workloads;

/// The most common imports for experiments.
pub mod prelude {
    pub use probranch_core::{BranchResolution, PbsConfig, PbsUnit};
    pub use probranch_harness::{run_cells, Cell, Jobs};
    pub use probranch_isa::{CmpOp, Inst, Program, ProgramBuilder, Reg};
    pub use probranch_pipeline::{
        run_functional, simulate, EngineKind, OooConfig, PredictorChoice, SimConfig, SimReport,
        Simulation,
    };
    pub use probranch_predictor::{BranchPredictor, TageScL, Tournament};
    pub use probranch_workloads::{
        all_benchmarks, Bandit, Benchmark, BenchmarkId, Category, Dop, Genetic, Greeks, McInteg,
        Photon, Pi, Scale, Swaptions,
    };
}
