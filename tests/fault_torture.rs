//! Randomized fault-injection torture over the fig6 smoke grid.
//!
//! Every case arms an arbitrary seeded fault plan (random subset of
//! sites, random probabilities and budgets) and runs the figure sweep
//! through a fresh [`experiments::Context`] — sometimes with a trace
//! directory, followed by a warm second pass over whatever the faulted
//! first pass left on disk. The locked-in dichotomy: the run either
//! completes with rows **byte-identical** to the fault-free baseline,
//! or fails with a structured [`SupervisedError`] whose exhausted
//! attempts all name an injected fault site. Nothing else — no torn
//! output, no wrong-but-plausible rows, no raw unwinds.
//!
//! Lives in its own test binary: fault plans are process-global, so
//! every test here serializes on [`faults::ScopedPlan`] and must never
//! share a process with tests that assume a quiet fault layer.

use std::panic::AssertUnwindSafe;
use std::sync::OnceLock;

use probranch_bench::experiments::{self, Engine, ExperimentScale};
use probranch_faults as faults;
use probranch_harness::{Jobs, SupervisedError};
use probranch_rng::SplitMix64;
use proptest::prelude::*;

/// One fig6 sweep at smoke scale on two workers, rendered to the
/// byte-comparable fingerprint the assertions diff.
fn fig6_fingerprint(ctx: &experiments::Context) -> String {
    format!(
        "{:?}",
        experiments::fig6_with_ctx(ExperimentScale::Smoke, Jobs::new(2), Engine::Replay, ctx)
    )
}

/// The fault-free baseline, computed once under an empty (installed,
/// so the lock is held) plan.
fn baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| fig6_fingerprint(&experiments::Context::new()))
}

/// Derives an arbitrary plan from two random words: roughly half the
/// sites armed, probabilities across the whole range (including the
/// certain-failure end — that is the structured-error branch of the
/// dichotomy), about a third of the clauses budget-capped.
fn arbitrary_plan(plan_seed: u64, dice: u64) -> faults::FaultPlan {
    let mut plan = faults::FaultPlan::seeded(plan_seed);
    for (i, &site) in faults::ALL_SITES.iter().enumerate() {
        let roll = SplitMix64::mix_fold(&[dice, i as u64]);
        if roll & 1 == 0 {
            continue;
        }
        let probability = ((roll >> 11) & 0xFFFF) as f64 / 65536.0;
        plan = if roll & 0b110 == 0b110 {
            plan.arm_capped(site, probability, (roll >> 40) & 3)
        } else {
            plan.arm(site, probability)
        };
    }
    plan
}

/// Whether a caught sweep failure is the structured kind the torture
/// contract allows: a [`SupervisedError`] every one of whose exhausted
/// attempts was an injected fault.
fn is_structured_fault(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<SupervisedError>().is_some_and(|e| {
        !e.failures.is_empty() && e.failures.iter().all(|f| f.contains("injected fault"))
    })
}

/// Service-mode torture: the same dichotomy, but the sweep travels a
/// real socket through `probranch-serve` with the transport failpoints
/// armed. For every seeded plan the client either heals (via retry) to
/// a response byte-identical to the clean rendering, or receives a
/// structured error naming only injected sites. Never a hang, never
/// torn bytes.
#[test]
fn service_mode_faults_heal_or_fail_structured_over_the_socket() {
    use std::time::Duration;

    use probranch_bench::service;
    use probranch_serve::{
        request_with_retry, Request, Server, ServerConfig, Status, SweepRequest,
    };

    let _scope = faults::ScopedPlan::install(faults::FaultPlan::default());
    let clean_body = service::section_text(
        "fig6",
        ExperimentScale::Smoke,
        Jobs::new(2),
        Engine::Replay,
        &experiments::Context::new(),
    )
    .expect("fig6 renders");

    // Budget-capped transport/cancel/cell faults (healable by retries)
    // plus one uncapped certain-failure plan (the structured branch).
    let plans: Vec<(faults::FaultPlan, bool)> = vec![
        (
            faults::FaultPlan::seeded(11)
                .arm_capped(faults::Site::ServeAccept, 1.0, 2)
                .arm_capped(faults::Site::ServeDrop, 1.0, 1)
                .arm_capped(faults::Site::ServeWrite, 1.0, 1),
            true,
        ),
        (
            faults::FaultPlan::seeded(12)
                .arm_capped(faults::Site::CancelSpurious, 1.0, 2)
                .arm_capped(faults::Site::CellPanic, 1.0, 2)
                .arm_capped(faults::Site::ServeRead, 1.0, 1),
            true,
        ),
        (
            faults::FaultPlan::seeded(13).arm(faults::Site::CellPanic, 1.0),
            false,
        ),
    ];
    for (plan, healable) in plans {
        faults::install(plan);
        let ctx = experiments::Context::new();
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let (server, ctx) = (&server, &ctx);
            let run = scope.spawn(move || {
                server
                    .run(service::sweep_handler(ctx, Jobs::new(2)))
                    .expect("serve loop")
            });
            let req = Request::Sweep(SweepRequest {
                section: "fig6".into(),
                scale: "smoke".into(),
                engine: "replay".into(),
                jobs: Some(2),
                deadline_ms: None,
            });
            // Generous retry budget: every armed transport fault is
            // budget-capped, so retries always reach a live exchange.
            let outcome = request_with_retry(addr, &req, Duration::from_secs(600), 10);
            match outcome {
                Ok(resp) if resp.status == Status::Ok => {
                    assert!(healable, "uncapped cell.panic cannot produce a clean sweep");
                    assert_eq!(
                        resp.body, clean_body,
                        "surviving served sweep must be byte-identical"
                    );
                }
                Ok(resp) => {
                    assert_eq!(resp.status, Status::Failed);
                    assert!(
                        resp.body.contains("injected fault"),
                        "structured failure must name an injected site: {}",
                        resp.body
                    );
                }
                Err(e) => panic!("transport must heal within the retry budget: {e}"),
            }
            // Shutdown itself rides the faulted transport; retry too.
            let resp = request_with_retry(addr, &Request::Shutdown, Duration::from_secs(5), 10)
                .expect("drain");
            assert_eq!(resp.status, Status::Ok);
            run.join().expect("server thread");
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_fault_plans_are_byte_identical_or_structured(
        plan_seed in any::<u64>(),
        dice in any::<u64>(),
        use_dir in any::<u64>(),
    ) {
        // Take the global fault lock with a quiet plan first: the
        // baseline must never see a sibling case's armed sites.
        let _scope = faults::ScopedPlan::install(faults::FaultPlan::default());
        let clean = baseline().to_string();

        let plan = arbitrary_plan(plan_seed, dice);
        let dir = std::env::temp_dir().join(format!(
            "probranch-torture-{}-{plan_seed:016x}",
            std::process::id()
        ));
        let use_dir = use_dir & 1 == 1;
        if use_dir {
            std::fs::create_dir_all(&dir).expect("torture trace dir");
        }
        faults::install(plan);

        // Cold pass (capturing), then — if it survived and persisted —
        // a warm pass over whatever mangled store the faults left.
        let mut passes = 1;
        for pass in 0..2 {
            if pass >= passes {
                break;
            }
            let ctx = if use_dir {
                experiments::Context::with_trace_dir(&dir)
            } else {
                experiments::Context::new()
            };
            match std::panic::catch_unwind(AssertUnwindSafe(|| fig6_fingerprint(&ctx))) {
                Ok(rows) => {
                    prop_assert_eq!(&rows, &clean, "surviving run must be byte-identical");
                    if use_dir {
                        passes = 2;
                    }
                }
                Err(payload) => {
                    prop_assert!(
                        is_structured_fault(payload.as_ref()),
                        "failure must be a structured SupervisedError naming injected sites"
                    );
                    break;
                }
            }
        }
        if use_dir {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
