//! Scheduling-independence tests for the parallel experiment engine:
//! a sweep computed by one worker and by many workers must produce
//! byte-identical rows. This is the guarantee that lets `figures
//! --jobs N` be trusted for paper figures — and that the CI matrix
//! (PROBRANCH_JOBS=1 vs default) re-checks on every push.

use probranch_bench::experiments::{self, ExperimentScale};
use probranch_bench::{render, Jobs};

#[test]
fn fig6_rows_are_byte_identical_across_worker_counts() {
    let serial = render::fig6(&experiments::fig6(ExperimentScale::Smoke, Jobs::serial()));
    for jobs in [Jobs::new(2), Jobs::new(8)] {
        let parallel = render::fig6(&experiments::fig6(ExperimentScale::Smoke, jobs));
        assert_eq!(
            serial, parallel,
            "fig6 rendering differs between 1 worker and {jobs} workers"
        );
    }
}

#[test]
fn table3_rows_are_byte_identical_across_worker_counts() {
    let serial = render::table3(&experiments::table3(ExperimentScale::Smoke, Jobs::serial()));
    let parallel = render::table3(&experiments::table3(ExperimentScale::Smoke, Jobs::new(8)));
    assert_eq!(
        serial, parallel,
        "table3 rendering differs between 1 worker and 8 workers"
    );
}

#[test]
fn remaining_sweeps_match_across_worker_counts() {
    // The cheaper sweeps, all through the same engine: serial vs 4-way.
    let scale = ExperimentScale::Smoke;
    assert_eq!(
        render::fig1(&experiments::fig1(scale, Jobs::serial())),
        render::fig1(&experiments::fig1(scale, Jobs::new(4)))
    );
    assert_eq!(
        render::table1(&experiments::table1(Jobs::serial())),
        render::table1(&experiments::table1(Jobs::new(4)))
    );
    assert_eq!(
        render::table2(&experiments::table2(scale, Jobs::serial())),
        render::table2(&experiments::table2(scale, Jobs::new(4)))
    );
    assert_eq!(
        render::fig9(&experiments::fig9(scale, Jobs::serial())),
        render::fig9(&experiments::fig9(scale, Jobs::new(4)))
    );
    assert_eq!(
        render::accuracy(&experiments::accuracy(scale, Jobs::serial())),
        render::accuracy(&experiments::accuracy(scale, Jobs::new(4)))
    );
}

#[test]
fn ipc_sweeps_match_across_worker_counts() {
    let scale = ExperimentScale::Smoke;
    let title = "determinism-check";
    assert_eq!(
        render::ipc(&experiments::fig7(scale, Jobs::serial()), title),
        render::ipc(&experiments::fig7(scale, Jobs::new(4)), title)
    );
    assert_eq!(
        render::ipc(&experiments::fig8(scale, Jobs::serial()), title),
        render::ipc(&experiments::fig8(scale, Jobs::new(4)), title)
    );
}
