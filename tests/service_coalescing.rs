//! End-to-end coalescing gate for the sweep service: N concurrent
//! identical requests through one served [`experiments::Context`] must
//! produce byte-identical bodies, match the in-process rendering
//! exactly, and — the shared-pool invariant — perform no more captures
//! than a single request would.

use std::time::Duration;

use probranch_bench::experiments::{self, Engine, ExperimentScale};
use probranch_bench::service;
use probranch_harness::Jobs;
use probranch_serve::{request, Request, Server, ServerConfig, Status, SweepOutcome, SweepRequest};

fn fig6_request() -> Request {
    Request::Sweep(SweepRequest {
        section: "fig6".into(),
        scale: "smoke".into(),
        engine: "replay".into(),
        jobs: Some(2),
        deadline_ms: None,
    })
}

#[test]
fn concurrent_identical_sweeps_share_one_capture_pass() {
    // In-process reference: the bytes `figures` would print, and the
    // capture count one fig6 pass costs.
    let reference_ctx = experiments::Context::new();
    let reference = service::section_text(
        "fig6",
        ExperimentScale::Smoke,
        Jobs::new(2),
        Engine::Replay,
        &reference_ctx,
    )
    .expect("fig6 is a known section");
    let reference_captures = reference_ctx.captures();
    assert!(reference_captures > 0, "fig6 must capture traces");

    let served_ctx = experiments::Context::new();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|scope| {
        let server = &server;
        let ctx = &served_ctx;
        let run = scope.spawn(move || {
            server
                .run(service::sweep_handler(ctx, Jobs::new(2)))
                .expect("serve loop")
        });
        assert!(probranch_serve::wait_ready(addr, Duration::from_secs(10)));
        let clients: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    request(addr, &fig6_request(), Duration::from_secs(600)).expect("sweep")
                })
            })
            .collect();
        let bodies: Vec<String> = clients
            .into_iter()
            .map(|c| {
                let resp = c.join().expect("client thread");
                assert_eq!(resp.status, Status::Ok, "body: {}", resp.body);
                resp.body
            })
            .collect();
        for body in &bodies {
            assert_eq!(
                body, &reference,
                "served bytes must match the in-process rendering"
            );
        }
        let resp = request(addr, &Request::Shutdown, Duration::from_secs(5)).expect("shutdown");
        assert_eq!(resp.status, Status::Ok);
        let stats = run.join().expect("server thread");
        // Every request was admitted (coalesced waiters still count as
        // requests); whether any shared a leader is timing-dependent,
        // but the capture bound below holds either way.
        assert_eq!(stats.requests + stats.shed, 4);
    });
    // The load-bearing invariant: four concurrent identical sweeps
    // cost exactly one capture pass — the per-key slot locks (and the
    // run-wide grid memo) make the extra requests hits, not work.
    assert_eq!(
        served_ctx.captures(),
        reference_captures,
        "concurrent identical requests must not re-capture"
    );
}

#[test]
fn expired_deadlines_cancel_instead_of_running_the_sweep() {
    let ctx = experiments::Context::new();
    let handler = service::sweep_handler(&ctx, Jobs::new(2));
    let req = SweepRequest {
        section: "fig6".into(),
        scale: "smoke".into(),
        engine: "replay".into(),
        jobs: Some(2),
        deadline_ms: Some(0),
    };
    match handler(&req) {
        SweepOutcome::Cancelled(msg) => {
            assert!(
                msg.contains("deadline exceeded"),
                "cancellation must attribute the deadline: {msg}"
            );
        }
        other => panic!("a 0ms deadline must cancel the sweep, got {other:?}"),
    }
}
