//! Workspace-level checks of the paper's headline claims, run against
//! the real experiment harness (smoke scale).

use probranch::prelude::*;
use probranch_bench::experiments::{self, ExperimentScale};

#[test]
fn abstract_claim_mpki_reduction_is_substantial() {
    // Abstract: "PBS improves MPKI by 45% on average (and up to 99%)".
    // Shape check: average reduction well above zero, maximum ~99%.
    let rows = experiments::fig6(ExperimentScale::Smoke, Jobs::default());
    let tage_reductions: Vec<f64> = rows.iter().map(|r| r.tage_reduction()).collect();
    let avg = tage_reductions.iter().sum::<f64>() / tage_reductions.len() as f64;
    let max = tage_reductions.iter().cloned().fold(f64::MIN, f64::max);
    assert!(avg > 40.0, "average TAGE MPKI reduction {avg:.1}%");
    assert!(max > 95.0, "max TAGE MPKI reduction {max:.1}%");
}

#[test]
fn abstract_claim_ipc_improves_on_average() {
    // Abstract: "and IPC by 6.7% (up to 17%) over the TAGE-SC-L
    // predictor".
    let rows = experiments::fig7(ExperimentScale::Smoke, Jobs::default());
    let avg_tage_pbs: f64 =
        rows.iter().map(|r| r.tage_pbs / r.tage).sum::<f64>() / rows.len() as f64;
    assert!(
        avg_tage_pbs > 1.05,
        "TAGE+PBS / TAGE average IPC ratio {avg_tage_pbs:.3}"
    );
}

#[test]
fn section_vii_tage_reduction_exceeds_tournament() {
    // Section VII-A: "We achieve even higher reductions in MPKI for the
    // TAGE-SC-L predictor" — because TAGE leaves probabilistic branches
    // as a larger fraction of the remaining mispredictions.
    let rows = experiments::fig6(ExperimentScale::Smoke, Jobs::default());
    let tour_avg: f64 =
        rows.iter().map(|r| r.tournament_reduction()).sum::<f64>() / rows.len() as f64;
    let tage_avg: f64 = rows.iter().map(|r| r.tage_reduction()).sum::<f64>() / rows.len() as f64;
    assert!(
        tage_avg > tour_avg,
        "TAGE reduction {tage_avg:.1}% should exceed tournament {tour_avg:.1}%"
    );
}

#[test]
fn figure1_misprediction_share_grows_under_better_predictor() {
    // "Note also that the misprediction rate for the probabilistic
    // branches tends to be higher for the more sophisticated TAGE-SC-L
    // predictor."
    let rows = experiments::fig1(ExperimentScale::Smoke, Jobs::default());
    let tour: f64 = rows
        .iter()
        .map(|r| r.tournament_mispredict_share)
        .sum::<f64>()
        / rows.len() as f64;
    let tage: f64 = rows.iter().map(|r| r.tage_mispredict_share).sum::<f64>() / rows.len() as f64;
    assert!(
        tage >= tour - 1.0,
        "TAGE share {tage:.1}% vs tournament {tour:.1}%"
    );
}

#[test]
fn table1_verdicts_match_paper_exactly() {
    let rows = experiments::table1(Jobs::default());
    let expected = [
        ("DOP", true, true),
        ("Greeks", false, true),
        ("Swaptions", false, false),
        ("Genetic", false, true),
        ("Photon", false, false),
        ("MC-integ", true, true),
        ("PI", true, true),
        ("Bandit", false, false),
    ];
    for (name, pred, cfd) in expected {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!((row.predication, row.cfd), (pred, cfd), "{name}");
    }
}

#[test]
fn hardware_cost_is_193_bytes() {
    assert_eq!(
        probranch::pbs::cost::total_bytes(&PbsConfig::default()),
        193
    );
}

#[test]
fn accuracy_metrics_are_acceptable() {
    for row in experiments::accuracy(ExperimentScale::Smoke, Jobs::default()) {
        assert!(
            row.acceptable,
            "{}: {} = {}",
            row.name, row.metric, row.value
        );
    }
}

#[test]
fn randomness_battery_intervals_overlap_for_every_benchmark() {
    // Table III's conclusion: "the results of PBS and the original code
    // significantly overlap, indicating that the two techniques are
    // statistically identical."
    for row in experiments::table3(ExperimentScale::Smoke, Jobs::default()) {
        assert!(
            row.orig_pass.overlaps(&row.pbs_pass),
            "{}: PASS intervals disjoint",
            row.name
        );
        assert!(
            row.orig_fail.overlaps(&row.pbs_fail),
            "{}: FAIL intervals disjoint",
            row.name
        );
    }
}

#[test]
fn fig9_interference_is_bounded() {
    // "reaching up to 5.8% and a couple of percents on average" — ours
    // must stay in a plausible band (no runaway interference).
    let rows = experiments::fig9(ExperimentScale::Smoke, Jobs::default());
    for r in &rows {
        assert!(
            (-1.0..30.0).contains(&r.max_increase_pct),
            "{}: {}%",
            r.name,
            r.max_increase_pct
        );
    }
}

#[test]
fn pbs_bootstrap_length_matches_in_flight_depth() {
    // Section III-B: the first few executions are treated as a normal
    // branch; the count equals the in-flight provisioning.
    for depth in [1usize, 2, 4, 8] {
        let mut unit = PbsUnit::new(PbsConfig {
            in_flight: depth,
            ..PbsConfig::default()
        });
        let mut bootstraps = 0;
        for i in 0..20u64 {
            match unit.execute_prob_branch(5, &[i], 100, i < 100) {
                BranchResolution::Bootstrap { .. } => bootstraps += 1,
                BranchResolution::Directed { .. } => {}
                BranchResolution::Bypassed { .. } => panic!("unexpected bypass"),
            }
        }
        assert_eq!(bootstraps, depth, "in_flight {depth}");
    }
}
