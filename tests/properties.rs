//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;

use probranch::isa::{
    decode, encode_inst, parse_asm, AluOp, CmpOp, FpBinOp, FpUnOp, Inst, Operand, Program, Reg,
};
use probranch::pbs::{BranchResolution, PbsConfig, PbsUnit};
use probranch::pipeline::{
    simulate, simulate_replay, simulate_replay_convoy, with_capture_tier, BranchEvent,
    BranchEventKind, Cache, CaptureTier, DynTrace, EmuConfig, Emulator, ExecLatencies, OooConfig,
    PredictorChoice, ReplayRec, SimConfig, TraceChunk,
};
use probranch::predictor::{BranchPredictor, TageScL, Tournament};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(|i| Reg::new(i).unwrap())
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        any::<i64>().prop_map(Operand::Imm),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge)
    ]
}

/// Arbitrary instructions excluding control flow (whose targets need a
/// program context) — used for encode/display round-trips.
fn dataflow_inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            proptest::sample::select(AluOp::ALL.to_vec()),
            reg_strategy(),
            reg_strategy(),
            operand_strategy()
        )
            .prop_map(|(op, dst, src1, src2)| Inst::Alu {
                op,
                dst,
                src1,
                src2
            }),
        (reg_strategy(), any::<u64>()).prop_map(|(dst, imm)| Inst::Li { dst, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (
            proptest::sample::select(FpBinOp::ALL.to_vec()),
            reg_strategy(),
            reg_strategy(),
            reg_strategy()
        )
            .prop_map(|(op, dst, src1, src2)| Inst::FpBin {
                op,
                dst,
                src1,
                src2
            }),
        (
            proptest::sample::select(FpUnOp::ALL.to_vec()),
            reg_strategy(),
            reg_strategy()
        )
            .prop_map(|(op, dst, src)| Inst::FpUn { op, dst, src }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Inst::IntToFp { dst, src }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Inst::FpToInt { dst, src }),
        (
            reg_strategy(),
            reg_strategy(),
            reg_strategy(),
            reg_strategy()
        )
            .prop_map(|(dst, cond, if_true, if_false)| Inst::CMov {
                dst,
                cond,
                if_true,
                if_false
            }),
        (reg_strategy(), reg_strategy(), any::<i32>()).prop_map(|(dst, base, offset)| Inst::Load {
            dst,
            base,
            offset: offset as i64
        }),
        (reg_strategy(), reg_strategy(), any::<i32>()).prop_map(|(src, base, offset)| {
            Inst::Store {
                src,
                base,
                offset: offset as i64,
            }
        }),
        (cmp_strategy(), reg_strategy(), operand_strategy()).prop_map(|(op, lhs, rhs)| Inst::Cmp {
            op,
            fp: false,
            lhs,
            rhs
        }),
        (reg_strategy(), any::<u16>()).prop_map(|(src, port)| Inst::Out { src, port }),
        Just(Inst::Nop),
    ]
}

/// Arbitrary full-system simulation configurations: core geometry,
/// functional-unit latencies, predictor, PBS, the Figure 9 filter,
/// branch tracing and the instruction budget (small enough to trip on
/// longer runs, exercising the error paths).
fn sim_config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        (1u32..9, 8usize..96, 1u64..7, 0u64..16),
        (1u64..4, 2u64..24, 4u64..30),
        prop_oneof![
            Just(PredictorChoice::Tournament),
            Just(PredictorChoice::TageScL),
            Just(PredictorChoice::StaticTaken),
            Just(PredictorChoice::StaticNotTaken),
        ],
        (any::<bool>(), any::<bool>(), any::<bool>()),
        800u64..40_000,
    )
        .prop_map(
            |(
                (width, rob_size, frontend_depth, mispredict_penalty),
                (int_mul, int_div, fp_long),
                predictor,
                (pbs, filter, trace),
                max_insts,
            )| {
                SimConfig {
                    core: OooConfig {
                        width,
                        rob_size,
                        frontend_depth,
                        mispredict_penalty,
                        latencies: ExecLatencies {
                            int_mul,
                            int_div,
                            fp_long,
                            ..ExecLatencies::default()
                        },
                    },
                    predictor,
                    pbs: pbs.then(PbsConfig::default),
                    filter_prob_from_predictor: filter,
                    collect_branch_trace: trace,
                    max_insts,
                    ..SimConfig::default()
                }
            },
        )
}

/// A small workload with probabilistic branches, regular branches and
/// memory traffic — every record shape a trace can carry.
fn replay_workload(iters: i64) -> Program {
    let mut b = probranch::isa::ProgramBuilder::new();
    let top = b.label("top");
    let join = b.label("join");
    b.li(Reg::R1, 0x9E3779B97F4A7C15u64 as i64);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 0);
    b.li(Reg::R4, (u64::MAX / 2) as i64);
    b.li(Reg::R6, 0x2545F4914F6CDD1Du64 as i64);
    b.li(Reg::R9, 128);
    b.bind(top);
    b.shr(Reg::R5, Reg::R1, 12).xor(Reg::R1, Reg::R1, Reg::R5);
    b.shl(Reg::R5, Reg::R1, 25).xor(Reg::R1, Reg::R1, Reg::R5);
    b.shr(Reg::R5, Reg::R1, 27).xor(Reg::R1, Reg::R1, Reg::R5);
    b.mul(Reg::R7, Reg::R1, Reg::R6);
    b.st(Reg::R7, Reg::R9, 0).ld(Reg::R8, Reg::R9, 0);
    b.sltu(Reg::R8, Reg::R7, Reg::R4);
    b.prob_cmp(CmpOp::Eq, Reg::R8, 1);
    b.prob_jmp(None, join);
    b.add(Reg::R3, Reg::R3, 1);
    b.bind(join);
    b.add(Reg::R2, Reg::R2, 1);
    b.br(CmpOp::Lt, Reg::R2, iters, top);
    b.out(Reg::R3, 0);
    b.halt();
    b.build().unwrap()
}

/// Arbitrary branch events, covering every kind/flag combination a
/// trace record can encode.
fn branch_event_strategy() -> impl Strategy<Value = Option<BranchEvent>> {
    prop_oneof![
        // Weight toward `None` (runs of non-branch records) so the
        // run-length index sees realistic span shapes…
        Just(None),
        Just(None),
        Just(None),
        // …without starving any kind/flag combination.
        (
            any::<bool>(),
            any::<bool>(),
            prop_oneof![
                Just(BranchEventKind::Conditional),
                Just(BranchEventKind::PbsDirected),
                Just(BranchEventKind::Unconditional),
                Just(BranchEventKind::Call),
                Just(BranchEventKind::Ret),
            ],
        )
            .prop_map(|(taken, is_prob, kind)| Some(BranchEvent {
                taken,
                kind,
                is_prob,
            })),
    ]
}

/// Arbitrary AoS replay records.
fn replay_rec_strategy() -> impl Strategy<Value = ReplayRec> {
    (
        any::<u32>(),
        branch_event_strategy(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(pc, branch, istall, dlat)| ReplayRec::new(pc, branch, istall, dlat))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capture_then_replay_equals_direct_simulation(
        cfg in sim_config_strategy(),
        iters in 40i64..400,
    ) {
        // The tentpole invariant of the shared-trace engine: for any
        // machine configuration, capturing the dynamic trace once and
        // re-timing it produces the *identical* `SimReport` (timing,
        // outputs, `prob_consumed`, `branch_trace`) — or the identical
        // error — as the fused engine simulating directly. And all
        // three capture tiers — native fragments, block-compiled,
        // decoded interpreter — must capture the identical trace,
        // error paths (`InstLimitExceeded` at the same dynamic trip
        // point) included. `replay_workload` is a mixed program for
        // the block compiler: straight-line xorshift bodies (a native
        // fragment under the generated tier) interleaved with
        // rare-op fallbacks (`prob_cmp`/`prob_jmp`/`out`) and block
        // terminators.
        let program = replay_workload(iters);
        let direct = simulate(&program, &cfg);
        let interp =
            with_capture_tier(CaptureTier::Interp, || DynTrace::capture(&program, &cfg));
        let block = with_capture_tier(CaptureTier::Block, || DynTrace::capture(&program, &cfg));
        let generated =
            with_capture_tier(CaptureTier::Generated, || DynTrace::capture(&program, &cfg));
        prop_assert_eq!(&block, &interp);
        prop_assert_eq!(&generated, &interp);
        let via_trace = interp.and_then(|trace| simulate_replay(&trace, &cfg));
        prop_assert_eq!(via_trace, direct);
    }

    #[test]
    fn capture_tiers_agree_on_memory_faults(
        pad in 1usize..40,
        budget in 3u64..2_000,
    ) {
        // A straight-line block faulting mid-body: every capture tier
        // must commit exactly the same record prefix and surface the
        // identical structured error — `MemoryFault` when the budget
        // covers the faulting load, `InstLimitExceeded` when it trips
        // first.
        let mut b = probranch::isa::ProgramBuilder::new();
        for _ in 0..pad {
            b.add(Reg::R1, Reg::R1, 1);
        }
        b.li(Reg::R9, (1u64 << 40) as i64);
        b.ld(Reg::R2, Reg::R9, 0);
        b.halt();
        let program = b.build().unwrap();
        let cfg = SimConfig { max_insts: budget, ..SimConfig::default() };
        let interp =
            with_capture_tier(CaptureTier::Interp, || DynTrace::capture(&program, &cfg));
        let block = with_capture_tier(CaptureTier::Block, || DynTrace::capture(&program, &cfg));
        prop_assert_eq!(&block, &interp);
        prop_assert!(block.is_err());
        prop_assert_eq!(block.err(), simulate(&program, &cfg).err());
    }

    #[test]
    fn soa_chunk_round_trips_arbitrary_record_streams(
        recs in proptest::collection::vec(replay_rec_strategy(), 0..600),
    ) {
        // The SoA chunk layout (parallel streams + a run-length index
        // over non-branch runs) must be a lossless re-encoding of the
        // AoS `ReplayRec` stream: unpacking reproduces every record
        // byte-identically, and re-packing the unpacked stream
        // reproduces the exact SoA buffers.
        let mut chunk = TraceChunk::default();
        for r in &recs {
            chunk.push(*r);
        }
        prop_assert_eq!(chunk.len(), recs.len());
        prop_assert_eq!(
            chunk.branch_count(),
            recs.iter().filter(|r| r.branch().is_some()).count()
        );
        let unpacked: Vec<ReplayRec> = chunk.records().collect();
        prop_assert_eq!(&unpacked, &recs);
        let mut repacked = TraceChunk::default();
        for r in &unpacked {
            repacked.push(*r);
        }
        prop_assert_eq!(repacked, chunk);
    }

    #[test]
    fn soa_capture_round_trips_for_arbitrary_sim_configs(
        cfg in sim_config_strategy(),
        iters in 40i64..400,
    ) {
        // For any machine configuration — including budgets that trip
        // the error path — a capture's SoA chunks must carry exactly
        // the committed dynamic stream, and each chunk's AoS view must
        // re-pack into the identical SoA streams.
        let program = replay_workload(iters);
        match DynTrace::capture(&program, &cfg) {
            Err(e) => {
                // Error paths agree with the fused engine…
                prop_assert_eq!(Err(e), simulate(&program, &cfg).map(|_| ()));
            }
            Ok(trace) => {
                let total: usize = trace.chunks().iter().map(TraceChunk::len).sum();
                prop_assert_eq!(total as u64, trace.instructions());
                for chunk in trace.chunks() {
                    let recs: Vec<ReplayRec> = chunk.records().collect();
                    let mut repacked = TraceChunk::default();
                    for r in &recs {
                        repacked.push(*r);
                    }
                    prop_assert_eq!(&repacked, chunk);
                }
            }
        }
    }

    #[test]
    fn mapped_trace_load_matches_owned_decode_and_replay(
        cfg in sim_config_strategy(),
        iters in 40i64..200,
        content_hash in any::<u64>(),
    ) {
        // The zero-copy load invariant of the v2 trace store: for any
        // capturable configuration, persisting a trace and loading it
        // back memory-mapped yields a `DynTrace` equal to the fully
        // owned decode of the same file, and every engine consuming the
        // mapped chunks — single replay and multi-consumer convoy —
        // returns byte-identical reports to the freshly captured,
        // fully owned trace.
        let program = replay_workload(iters);
        // Budget-tripping configs have no trace to persist; the error
        // agreement is covered by the capture round-trip test above.
        let Ok(trace) = DynTrace::capture(&program, &cfg) else {
            return Ok(());
        };
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "probranch-prop-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        trace.write_file(&path, content_hash).unwrap();
        let mapped = DynTrace::read_file(&path, content_hash, &cfg);
        let owned = DynTrace::read_file_owned(&path, content_hash, &cfg);
        let _ = std::fs::remove_file(&path);
        let (Some(mapped), Some(owned)) = (mapped, owned) else {
            return Err(TestCaseError::fail("persisted trace failed to load"));
        };
        prop_assert_eq!(&mapped, &owned);
        prop_assert_eq!(&mapped, &trace);
        prop_assert_eq!(simulate_replay(&mapped, &cfg), simulate_replay(&trace, &cfg));
        // Convoy over mapped chunks: two consumers sharing the map.
        let mut other = cfg.clone();
        other.predictor = match cfg.predictor {
            PredictorChoice::Tournament => PredictorChoice::TageScL,
            _ => PredictorChoice::Tournament,
        };
        let configs = [cfg.clone(), other];
        prop_assert_eq!(
            simulate_replay_convoy(&mapped, &configs),
            simulate_replay_convoy(&trace, &configs)
        );
    }

    #[test]
    fn binary_encode_round_trips(inst in dataflow_inst_strategy()) {
        let mut words = Vec::new();
        encode_inst(&inst, &mut words);
        let back = decode(&words).unwrap();
        prop_assert_eq!(back, vec![inst]);
    }

    #[test]
    fn text_round_trips(inst in dataflow_inst_strategy()) {
        let text = format!("{inst}\nhalt");
        let p = parse_asm(&text).unwrap();
        prop_assert_eq!(*p.fetch(0), inst);
    }

    #[test]
    fn emulator_is_deterministic_on_random_dataflow(
        insts in proptest::collection::vec(dataflow_inst_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        // Random base registers would fault; memory determinism is
        // covered by the workload round-trip tests, so strip memory ops
        // here and keep the pure dataflow.
        let mut insts: Vec<Inst> = insts
            .into_iter()
            .map(|i| match i {
                Inst::Load { dst, .. } => Inst::Li { dst, imm: 7 },
                Inst::Store { .. } => Inst::Nop,
                other => other,
            })
            .collect();
        insts.push(Inst::Halt);
        let program = Program::new(insts).unwrap();
        let run = || {
            let mut e = Emulator::new(program.clone(), EmuConfig { mem_words: 1024, max_call_depth: 8 });
            e.set_reg(Reg::R0, 0);
            e.set_reg(Reg::R1, seed);
            e.run_to_halt(1_000).unwrap();
            (0..32).map(|r| e.reg(Reg::new(r).unwrap())).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn pbs_fifo_preserves_value_order(values in proptest::collection::vec(any::<u64>(), 8..100)) {
        // Directed instances replay generated values in order, lagged by
        // the in-flight depth.
        let mut unit = PbsUnit::new(PbsConfig::default());
        let depth = PbsConfig::default().in_flight;
        let mut consumed = Vec::new();
        for &v in &values {
            match unit.execute_prob_branch(10, &[v], 12345, v % 2 == 0) {
                BranchResolution::Directed { swapped, .. } => consumed.push(swapped[0]),
                BranchResolution::Bootstrap { .. } => consumed.push(v),
                BranchResolution::Bypassed { .. } => prop_assert!(false, "unexpected bypass"),
            }
        }
        prop_assert_eq!(&consumed[..depth], &values[..depth]);
        prop_assert_eq!(&consumed[depth..], &values[..values.len() - depth]);
    }

    #[test]
    fn pbs_directed_outcome_matches_swapped_value(values in proptest::collection::vec(0u64..1000, 8..60)) {
        let mut unit = PbsUnit::new(PbsConfig::default());
        for &v in &values {
            let taken = v < 500;
            if let BranchResolution::Directed { taken: dir, swapped } =
                unit.execute_prob_branch(7, &[v], 500, taken)
            {
                prop_assert_eq!(dir, swapped[0] < 500, "semantic consistency of the swap");
            }
        }
    }

    #[test]
    fn cache_invariants_hold_under_random_access(addrs in proptest::collection::vec(any::<u32>(), 1..500)) {
        let mut c = Cache::new(4096, 4, 64);
        for a in addrs {
            c.access(a as u64);
            prop_assert!(c.check_invariants());
        }
    }

    #[test]
    fn cache_hit_plus_miss_equals_accesses(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
        let mut c = Cache::new(2048, 2, 64);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    #[test]
    fn predictors_never_panic_and_stay_in_budget(
        pattern in proptest::collection::vec((0u64..64, any::<bool>()), 1..500)
    ) {
        let mut tour = Tournament::default();
        let mut tage = TageScL::default();
        for &(pc, taken) in &pattern {
            let _ = tour.predict(pc);
            tour.update(pc, taken);
            let _ = tage.predict(pc);
            tage.update(pc, taken);
        }
        prop_assert!(tour.storage_bits() <= 8 * 1024);
        prop_assert!(tage.storage_bits() <= 8 * 8 * 1024);
    }

    #[test]
    fn simulation_cycle_count_is_at_least_width_bound(iters in 100i64..2000) {
        // cycles >= instructions / width: the core cannot beat its width.
        let pi = probranch::workloads::Pi { samples: iters, seed: 7 };
        use probranch::workloads::Benchmark;
        let r = probranch::pipeline::simulate(&pi.program(), &SimConfig::default()).unwrap();
        prop_assert!(r.timing.cycles >= r.timing.instructions / 4);
    }
}
