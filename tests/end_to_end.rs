//! Cross-crate integration tests: the full paper pipeline from ISA
//! encoding through PBS-enabled cycle simulation on the real workloads.

use probranch::prelude::*;

#[test]
fn every_workload_runs_under_all_four_configurations() {
    for b in all_benchmarks(Scale::Smoke, 7) {
        let program = b.program();
        for predictor in [PredictorChoice::Tournament, PredictorChoice::TageScL] {
            for pbs in [false, true] {
                let mut cfg = SimConfig::default().predictor(predictor);
                if pbs {
                    cfg = cfg.with_pbs();
                }
                let r = simulate(&program, &cfg)
                    .unwrap_or_else(|e| panic!("{} {predictor:?} pbs={pbs}: {e}", b.name()));
                assert!(r.timing.instructions > 1000, "{}", b.name());
                assert!(r.timing.ipc() > 0.05, "{}", b.name());
            }
        }
    }
}

#[test]
fn pbs_reduces_mpki_on_every_workload_with_tage() {
    for b in all_benchmarks(Scale::Smoke, 3) {
        let program = b.program();
        let base = simulate(&program, &SimConfig::default()).unwrap();
        let pbs = simulate(&program, &SimConfig::default().with_pbs()).unwrap();
        assert!(
            pbs.timing.mpki() <= base.timing.mpki() + 0.01,
            "{}: base {:.3} vs pbs {:.3}",
            b.name(),
            base.timing.mpki(),
            pbs.timing.mpki()
        );
        // The probabilistic mispredictions drop sharply. Only bootstrap
        // instances may miss; workloads whose probabilistic branch sits
        // in a short inner loop (Genetic's per-bit mutation loop)
        // re-bootstrap at every context flush and retain a residue, as
        // the paper's own context-flush design implies.
        assert!(
            pbs.timing.mispredicts_prob * 2 <= base.timing.mispredicts_prob.max(10),
            "{}: prob mispredicts {} -> {}",
            b.name(),
            base.timing.mispredicts_prob,
            pbs.timing.mispredicts_prob
        );
    }
}

#[test]
fn paper_headline_tournament_pbs_beats_plain_tage_on_average() {
    // Section VII-B: "the tournament branch predictor with PBS
    // outperforms the TAGE-SC-L predictor."
    let mut tage_cycles = 0u64;
    let mut tour_pbs_cycles = 0u64;
    for b in all_benchmarks(Scale::Smoke, 5) {
        let program = b.program();
        tage_cycles += simulate(
            &program,
            &SimConfig::default().predictor(PredictorChoice::TageScL),
        )
        .unwrap()
        .timing
        .cycles;
        tour_pbs_cycles += simulate(
            &program,
            &SimConfig::default()
                .predictor(PredictorChoice::Tournament)
                .with_pbs(),
        )
        .unwrap()
        .timing
        .cycles;
    }
    assert!(
        tour_pbs_cycles < tage_cycles,
        "tournament+PBS {tour_pbs_cycles} cycles vs TAGE {tage_cycles}"
    );
}

#[test]
fn wider_core_gets_larger_pbs_benefit() {
    // The Figure 8 observation: "even higher improvements are obtained
    // for a wider processor pipeline." Checked on the aggregate.
    let mut narrow_speedup = 0.0;
    let mut wide_speedup = 0.0;
    for b in all_benchmarks(Scale::Smoke, 9) {
        let program = b.program();
        for (cfgs, acc) in [
            (OooConfig::default(), &mut narrow_speedup),
            (OooConfig::wide(), &mut wide_speedup),
        ] {
            let base_cfg = SimConfig {
                core: cfgs.clone(),
                ..SimConfig::default()
            };
            let base = simulate(&program, &base_cfg).unwrap();
            let pbs_cfg = SimConfig {
                core: cfgs,
                ..SimConfig::default().with_pbs()
            };
            let pbs = simulate(&program, &pbs_cfg).unwrap();
            *acc += base.timing.cycles as f64 / pbs.timing.cycles as f64;
        }
    }
    assert!(
        wide_speedup > narrow_speedup,
        "wide {wide_speedup:.3} vs narrow {narrow_speedup:.3} total speedup"
    );
}

#[test]
fn binary_round_trip_preserves_simulation_results() {
    // Encode the workload to its binary image, decode, and re-simulate:
    // identical results.
    let b = Pi::new(Scale::Smoke, 3);
    let program = b.program();
    let image = probranch::isa::encode(&program);
    let decoded = probranch::isa::Program::new(probranch::isa::decode(&image).unwrap()).unwrap();
    let r1 = simulate(&program, &SimConfig::default().with_pbs()).unwrap();
    let r2 = simulate(&decoded, &SimConfig::default().with_pbs()).unwrap();
    assert_eq!(r1.timing, r2.timing);
    assert_eq!(r1.output(0), r2.output(0));
}

#[test]
fn legacy_decode_runs_probabilistic_binaries_as_regular() {
    // Paper Section V-A2 backward compatibility: a machine without PBS
    // support decodes the same binary and produces the same
    // architectural results as the baseline machine.
    let b = McInteg::new(Scale::Smoke, 3);
    let program = b.program();
    let image = probranch::isa::encode(&program);
    let legacy =
        probranch::isa::Program::new(probranch::isa::decode_compat(&image).unwrap()).unwrap();
    assert_eq!(
        legacy.branch_counts().0,
        0,
        "no probabilistic branches after legacy decode"
    );
    let marked = run_functional(&program, None, 10_000_000).unwrap();
    let unmarked = run_functional(&legacy, None, 10_000_000).unwrap();
    assert_eq!(marked.output(0), unmarked.output(0));
}

#[test]
fn whole_workload_survives_text_round_trip() {
    // Disassemble a full workload and re-assemble it.
    let b = Swaptions::new(Scale::Smoke, 3);
    let program = b.program();
    let text = program.to_string();
    let back = probranch::isa::parse_asm(&text).unwrap();
    assert_eq!(program, back);
}

#[test]
fn determinism_across_identical_runs() {
    // Paper Section III-B: "PBS replays the same stream of data values
    // when given the same initial random seed."
    let b = Photon::new(Scale::Smoke, 11);
    let program = b.program();
    let r1 = simulate(&program, &SimConfig::default().with_pbs()).unwrap();
    let r2 = simulate(&program, &SimConfig::default().with_pbs()).unwrap();
    assert_eq!(r1.timing, r2.timing);
    assert_eq!(r1.prob_consumed, r2.prob_consumed);
    assert_eq!(r1.outputs, r2.outputs);
}

#[test]
fn pbs_unit_stats_are_consistent_with_timing_stats() {
    let b = Greeks::new(Scale::Smoke, 5);
    let r = simulate(&b.program(), &SimConfig::default().with_pbs()).unwrap();
    let pbs = r.pbs.expect("PBS attached");
    assert_eq!(
        pbs.directed, r.timing.pbs_directed,
        "unit and timing model must agree on directed instances"
    );
    assert_eq!(
        pbs.directed + pbs.bootstrap + pbs.bypassed,
        r.timing.prob_branches,
        "every dynamic probabilistic jump is accounted for"
    );
}

#[test]
fn context_switch_flush_rebootstraps() {
    use probranch::pipeline::{EmuConfig, Emulator};

    let b = Pi::new(Scale::Smoke, 3);
    let mut emu = Emulator::with_pbs(
        b.program(),
        EmuConfig::default(),
        PbsUnit::new(PbsConfig::default()),
    );
    // Run half the program, then model an unsaved context switch.
    for _ in 0..5_000 {
        emu.step().unwrap();
    }
    let _before = emu.pbs_stats().unwrap();
    emu.run_to_halt(100_000_000).unwrap();
    let after = emu.pbs_stats().unwrap();
    assert!(after.directed > 0);
}
