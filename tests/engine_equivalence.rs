//! Engine-equivalence suite: the fused/predecoded engine (`simulate`),
//! the unfused reference engine (`simulate_reference`) and the
//! shared-trace replay engines (`DynTrace::capture` + `simulate_replay`,
//! and the chunk-streaming `simulate_convoy`) must all produce
//! **identical** `SimReport`s — timing statistics, PBS counters,
//! outputs, the consumed probabilistic-value stream, and the per-branch
//! trace — for every workload of the golden/determinism suites, under
//! every machine configuration the paper sweeps. Error paths included:
//! the instruction budget trips at the same dynamic instruction in
//! every engine.
//!
//! The suite exercises both API generations: the legacy free functions
//! above (now thin wrappers) and the `Simulation`/`EngineKind` entry
//! type they forward to — including the batched-prediction replay drain
//! that `EngineKind::Replay` runs through `predict_update_batch`.
//!
//! The comparison sweeps run through the parallel experiment harness
//! with default jobs, so the CI matrix (PROBRANCH_JOBS=1 vs default)
//! exercises the suite — including the trace captures and replays —
//! both serially and in parallel.

use probranch::harness::{run_cells, workload_seed, Cell, Jobs};
use probranch::pbs::PbsConfig;
use probranch::pipeline::{
    simulate, simulate_convoy, simulate_reference, simulate_replay, simulate_replay_convoy,
    DynTrace, EngineKind, OooConfig, PredictorChoice, SimConfig, SimReport, Simulation,
};
use probranch::workloads::{BenchmarkId, Scale};

/// The golden-trace suite's fixed workload seed: equivalence at exactly
/// the stream the golden files pin.
const GOLDEN_SEED: u64 = 0xB5EED;

fn config_for(cell: &Cell, core: OooConfig, trace: bool) -> SimConfig {
    let mut cfg = SimConfig {
        core,
        predictor: cell.predictor,
        collect_branch_trace: trace,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(PbsConfig::default());
    }
    cfg
}

/// Runs the replay engine (capture once, replay once) for `cfg`.
fn replayed(program: &probranch::isa::Program, cfg: &SimConfig) -> SimReport {
    let trace = DynTrace::capture(program, cfg).expect("capture");
    simulate_replay(&trace, cfg).expect("replay")
}

fn assert_reports_equal(cell: &Cell, fused: &SimReport, reference: &SimReport) {
    // Field-by-field first, so a drift names the diverging component…
    assert_eq!(fused.timing, reference.timing, "timing drift on {cell:?}");
    assert_eq!(fused.pbs, reference.pbs, "PBS-counter drift on {cell:?}");
    assert_eq!(fused.outputs, reference.outputs, "output drift on {cell:?}");
    assert_eq!(
        fused.prob_consumed, reference.prob_consumed,
        "consumed-stream drift on {cell:?}"
    );
    assert_eq!(
        fused.branch_trace, reference.branch_trace,
        "branch-trace drift on {cell:?}"
    );
    // …then the whole report, so no future field escapes the net.
    assert_eq!(fused, reference, "report drift on {cell:?}");
}

/// Every benchmark × {tournament, TAGE-SC-L} × {PBS off, on} on the
/// default 4-wide core — the fig6/fig7 grid the determinism suite runs.
#[test]
fn fused_engine_matches_reference_on_the_fig6_grid() {
    let cells: Vec<Cell> = BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            [
                (PredictorChoice::Tournament, false),
                (PredictorChoice::Tournament, true),
                (PredictorChoice::TageScL, false),
                (PredictorChoice::TageScL, true),
            ]
            .map(|(p, pbs)| Cell::new(w, p, pbs, 0))
        })
        .collect();
    let outcomes = run_cells(&cells, Jobs::default(), |cell| {
        let program = cell
            .workload
            .build(Scale::Smoke, cell.workload_seed())
            .program();
        let cfg = config_for(cell, OooConfig::default(), false);
        (
            simulate(&program, &cfg).expect("fused"),
            simulate_reference(&program, &cfg).expect("reference"),
            replayed(&program, &cfg),
        )
    });
    for (cell, (fused, reference, replay)) in cells.iter().zip(&outcomes) {
        assert_reports_equal(cell, fused, reference);
        assert_eq!(fused, replay, "replay drift on {cell:?}");
    }
}

/// The redesigned `Simulation` entry point: all four `EngineKind`s —
/// including the default batched replay engine, whose consumers
/// pre-predict every chunk through `predict_update_batch` — must
/// produce the same report on the full fig6 grid. The TAGE-SC-L cells
/// are the load-bearing ones: they pin the history-parallel batched
/// TAGE path byte-identical to the serial predictions the live fused
/// and reference engines make.
#[test]
fn simulation_api_engines_agree_on_the_fig6_grid() {
    assert_eq!(Simulation::default().engine(), EngineKind::Replay);
    let cells: Vec<Cell> = BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            [
                (PredictorChoice::Tournament, false),
                (PredictorChoice::Tournament, true),
                (PredictorChoice::TageScL, false),
                (PredictorChoice::TageScL, true),
            ]
            .map(|(p, pbs)| Cell::new(w, p, pbs, 0))
        })
        .collect();
    let outcomes = run_cells(&cells, Jobs::default(), |cell| {
        let program = cell
            .workload
            .build(Scale::Smoke, cell.workload_seed())
            .program();
        let cfg = config_for(cell, OooConfig::default(), false);
        let reports =
            EngineKind::ALL.map(|engine| Simulation::new(engine).run(&program, &cfg).expect("run"));
        // `Simulation::replay` is engine-independent by design: a trace
        // fixes the branch stream, so every engine re-times it the same
        // way. Pin that with a capture replayed under all four kinds.
        let trace = DynTrace::capture(&program, &cfg).expect("capture");
        let replays = EngineKind::ALL.map(|engine| {
            Simulation::new(engine)
                .replay(&trace, &cfg)
                .expect("replay")
        });
        (reports, replays)
    });
    for (cell, (reports, replays)) in cells.iter().zip(&outcomes) {
        let [replay, convoy, fused, reference] = reports;
        assert_eq!(replay, fused, "batched replay vs fused drift on {cell:?}");
        assert_eq!(
            replay, reference,
            "batched replay vs reference drift on {cell:?}"
        );
        assert_eq!(replay, convoy, "batched replay vs convoy drift on {cell:?}");
        for r in replays {
            assert_eq!(r, replay, "engine-dependent trace replay on {cell:?}");
        }
    }
}

/// One trace per (workload, PBS) emulation key must serve *every*
/// predictor and filter configuration — including a convoy draining all
/// of them in lockstep from a single streamed capture.
#[test]
fn one_trace_serves_every_timing_configuration() {
    let keys: Vec<Cell> = BenchmarkId::ALL
        .iter()
        .flat_map(|&w| [false, true].map(|pbs| Cell::new(w, PredictorChoice::Tournament, pbs, 0)))
        .collect();
    let outcomes = run_cells(&keys, Jobs::default(), |key| {
        let program = key
            .workload
            .build(Scale::Smoke, key.workload_seed())
            .program();
        let configs: Vec<SimConfig> = [
            PredictorChoice::Tournament,
            PredictorChoice::TageScL,
            PredictorChoice::StaticTaken,
            PredictorChoice::StaticNotTaken,
        ]
        .iter()
        .flat_map(|&p| {
            let mut plain = config_for(key, OooConfig::default(), false);
            plain.predictor = p;
            let mut filtered = plain.clone();
            filtered.filter_prob_from_predictor = true;
            [plain, filtered]
        })
        .collect();
        let fused: Vec<SimReport> = configs
            .iter()
            .map(|cfg| simulate(&program, cfg).expect("fused"))
            .collect();
        // Mode (a): one materialized trace, one replay per config.
        let trace = DynTrace::capture(&program, &configs[0]).expect("capture");
        let replays: Vec<SimReport> = configs
            .iter()
            .map(|cfg| simulate_replay(&trace, cfg).expect("replay"))
            .collect();
        // Mode (b): one streamed fused convoy over all configs in
        // lockstep (k = 8 exercises the arbitrary-k fallback loop).
        let convoy = simulate_convoy(&program, &configs).expect("convoy");
        // Mode (c): the same fused convoy over the materialized trace.
        let replay_convoy = simulate_replay_convoy(&trace, &configs).expect("replay convoy");
        (fused, replays, convoy, replay_convoy)
    });
    for (key, (fused, replays, convoy, replay_convoy)) in keys.iter().zip(&outcomes) {
        assert_eq!(fused, replays, "shared-trace replay drift on {key:?}");
        assert_eq!(fused, convoy, "convoy drift on {key:?}");
        assert_eq!(fused, replay_convoy, "replay-convoy drift on {key:?}");
    }
}

/// The fused two-consumer convoy — the monomorphized-per-predictor-pair
/// loop the Figure 9 sweep and the figure grids drain — must equal `k`
/// independent `simulate_replay` runs for **every predictor pair** of
/// the fig9 grid (each predictor against itself and every other, with
/// the second consumer in the filtered mode), both streamed
/// (`simulate_convoy`) and over a materialized trace
/// (`simulate_replay_convoy`).
#[test]
fn fused_pair_convoy_matches_independent_replays_for_every_predictor_pair() {
    const PREDICTORS: [PredictorChoice; 4] = [
        PredictorChoice::Tournament,
        PredictorChoice::TageScL,
        PredictorChoice::StaticTaken,
        PredictorChoice::StaticNotTaken,
    ];
    let pairs: Vec<(PredictorChoice, PredictorChoice)> = PREDICTORS
        .iter()
        .flat_map(|&a| PREDICTORS.map(|b| (a, b)))
        .collect();
    let outcomes = run_cells(&pairs, Jobs::default(), |&(a, b)| {
        let program = BenchmarkId::Bandit
            .build(Scale::Smoke, workload_seed(BenchmarkId::Bandit, 2))
            .program();
        let mut unfiltered = SimConfig::default().predictor(a);
        unfiltered.collect_branch_trace = true;
        let mut filtered = SimConfig::default().predictor(b);
        filtered.filter_prob_from_predictor = true;
        let pair = [unfiltered, filtered];
        let independent: Vec<SimReport> = pair
            .iter()
            .map(|cfg| simulate(&program, cfg).expect("fused"))
            .collect();
        let streamed = simulate_convoy(&program, &pair).expect("streamed convoy");
        let trace = DynTrace::capture(&program, &pair[0]).expect("capture");
        let materialized = simulate_replay_convoy(&trace, &pair).expect("replay convoy");
        (independent, streamed, materialized)
    });
    for ((a, b), (independent, streamed, materialized)) in pairs.iter().zip(&outcomes) {
        assert_eq!(
            independent, streamed,
            "streamed pair-convoy drift for {a:?}/{b:?}"
        );
        assert_eq!(
            independent, materialized,
            "materialized pair-convoy drift for {a:?}/{b:?}"
        );
    }
}

/// The golden-trace workloads with branch tracing enabled: the traces —
/// the predictor's observable behaviour — must match entry for entry.
#[test]
fn fused_engine_matches_reference_traces_on_golden_workloads() {
    let cells = [
        Cell::new(BenchmarkId::Pi, PredictorChoice::TageScL, false, 0),
        Cell::new(BenchmarkId::Bandit, PredictorChoice::Tournament, false, 0),
        Cell::new(BenchmarkId::Pi, PredictorChoice::TageScL, true, 0),
        Cell::new(BenchmarkId::Bandit, PredictorChoice::Tournament, true, 0),
    ];
    let outcomes = run_cells(&cells, Jobs::default(), |cell| {
        let program = cell.workload.build(Scale::Smoke, GOLDEN_SEED).program();
        let cfg = config_for(cell, OooConfig::default(), true);
        (
            simulate(&program, &cfg).expect("fused"),
            simulate_reference(&program, &cfg).expect("reference"),
            replayed(&program, &cfg),
        )
    });
    for (cell, (fused, reference, replay)) in cells.iter().zip(&outcomes) {
        assert!(
            !fused.branch_trace.is_empty(),
            "trace must be populated for {cell:?}"
        );
        assert_reports_equal(cell, fused, reference);
        assert_eq!(
            fused.branch_trace, replay.branch_trace,
            "replayed branch-trace drift on {cell:?}"
        );
        assert_eq!(fused, replay, "replay drift on {cell:?}");
    }
}

/// The wide (8-wide / 256-ROB) core, the static predictors, and the
/// Figure 9 filter mode — the remaining machine axes.
#[test]
fn fused_engine_matches_reference_on_remaining_machine_axes() {
    let program = BenchmarkId::Photon
        .build(Scale::Smoke, workload_seed(BenchmarkId::Photon, 1))
        .program();
    for predictor in [
        PredictorChoice::Tournament,
        PredictorChoice::TageScL,
        PredictorChoice::StaticTaken,
        PredictorChoice::StaticNotTaken,
    ] {
        for (core, filter, pbs) in [
            (OooConfig::wide(), false, true),
            (OooConfig::default(), true, false),
            (OooConfig::wide(), true, true),
        ] {
            let mut cfg = SimConfig {
                core,
                predictor,
                collect_branch_trace: true,
                ..SimConfig::default()
            };
            cfg.filter_prob_from_predictor = filter;
            if pbs {
                cfg.pbs = Some(PbsConfig::default());
            }
            let fused = simulate(&program, &cfg).expect("fused");
            let reference = simulate_reference(&program, &cfg).expect("reference");
            assert_eq!(
                fused, reference,
                "report drift: {predictor:?}, filter={filter}, pbs={pbs}"
            );
            assert_eq!(
                fused,
                replayed(&program, &cfg),
                "replay drift: {predictor:?}, filter={filter}, pbs={pbs}"
            );
        }
    }
}

/// Every engine must also agree on *errors*: the instruction budget
/// trips at the same dynamic instruction — at capture time, and at
/// replay time when a completed trace is re-timed under a tighter
/// budget.
#[test]
fn engines_match_on_instruction_limits() {
    let program = BenchmarkId::Pi.build(Scale::Smoke, GOLDEN_SEED).program();
    for max_insts in [1, 2, 64, 65, 1000] {
        let cfg = SimConfig {
            max_insts,
            ..SimConfig::default()
        };
        let fused = simulate(&program, &cfg);
        let reference = simulate_reference(&program, &cfg);
        assert_eq!(fused, reference, "limit {max_insts}");
        assert!(fused.is_err(), "limit {max_insts} must trip");
        // Capture under the same budget errors identically…
        let captured = DynTrace::capture(&program, &cfg);
        assert_eq!(
            captured.as_ref().err(),
            fused.as_ref().err(),
            "capture limit {max_insts}"
        );
        // …and a convoy propagates it to every cell.
        let convoy = simulate_convoy(&program, std::slice::from_ref(&cfg));
        assert_eq!(
            convoy.err(),
            fused.clone().err(),
            "convoy limit {max_insts}"
        );
    }
    // A completed trace replayed under budgets at/below its length must
    // return the same error the live engines would — through the
    // single-consumer replay and the fused replay-convoy alike.
    let full = DynTrace::capture(&program, &SimConfig::default()).expect("capture");
    for max_insts in [1, full.instructions(), full.instructions() + 1] {
        let cfg = SimConfig {
            max_insts,
            ..SimConfig::default()
        };
        assert_eq!(
            simulate_replay(&full, &cfg),
            simulate(&program, &cfg),
            "replay limit {max_insts}"
        );
        assert_eq!(
            simulate_replay_convoy(&full, std::slice::from_ref(&cfg))
                .map(|mut v| v.pop().expect("one report")),
            simulate(&program, &cfg),
            "replay-convoy limit {max_insts}"
        );
    }
}
