//! Engine-equivalence suite: the fused/predecoded engine (`simulate`)
//! must produce a `SimReport` **identical** to the unfused reference
//! engine (`simulate_reference`) — timing statistics, PBS counters,
//! outputs, the consumed probabilistic-value stream, and the per-branch
//! trace — for every workload of the golden/determinism suites, under
//! every machine configuration the paper sweeps.
//!
//! The comparison sweeps run through the parallel experiment harness
//! with default jobs, so the CI matrix (PROBRANCH_JOBS=1 vs default)
//! exercises the suite both serially and in parallel.

use probranch::harness::{run_cells, workload_seed, Cell, Jobs};
use probranch::pbs::PbsConfig;
use probranch::pipeline::{
    simulate, simulate_reference, OooConfig, PredictorChoice, SimConfig, SimReport,
};
use probranch::workloads::{BenchmarkId, Scale};

/// The golden-trace suite's fixed workload seed: equivalence at exactly
/// the stream the golden files pin.
const GOLDEN_SEED: u64 = 0xB5EED;

fn config_for(cell: &Cell, core: OooConfig, trace: bool) -> SimConfig {
    let mut cfg = SimConfig {
        core,
        predictor: cell.predictor,
        collect_branch_trace: trace,
        ..SimConfig::default()
    };
    if cell.pbs {
        cfg.pbs = Some(PbsConfig::default());
    }
    cfg
}

fn assert_reports_equal(cell: &Cell, fused: &SimReport, reference: &SimReport) {
    // Field-by-field first, so a drift names the diverging component…
    assert_eq!(fused.timing, reference.timing, "timing drift on {cell:?}");
    assert_eq!(fused.pbs, reference.pbs, "PBS-counter drift on {cell:?}");
    assert_eq!(fused.outputs, reference.outputs, "output drift on {cell:?}");
    assert_eq!(
        fused.prob_consumed, reference.prob_consumed,
        "consumed-stream drift on {cell:?}"
    );
    assert_eq!(
        fused.branch_trace, reference.branch_trace,
        "branch-trace drift on {cell:?}"
    );
    // …then the whole report, so no future field escapes the net.
    assert_eq!(fused, reference, "report drift on {cell:?}");
}

/// Every benchmark × {tournament, TAGE-SC-L} × {PBS off, on} on the
/// default 4-wide core — the fig6/fig7 grid the determinism suite runs.
#[test]
fn fused_engine_matches_reference_on_the_fig6_grid() {
    let cells: Vec<Cell> = BenchmarkId::ALL
        .iter()
        .flat_map(|&w| {
            [
                (PredictorChoice::Tournament, false),
                (PredictorChoice::Tournament, true),
                (PredictorChoice::TageScL, false),
                (PredictorChoice::TageScL, true),
            ]
            .map(|(p, pbs)| Cell::new(w, p, pbs, 0))
        })
        .collect();
    let outcomes = run_cells(&cells, Jobs::default(), |cell| {
        let program = cell
            .workload
            .build(Scale::Smoke, cell.workload_seed())
            .program();
        let cfg = config_for(cell, OooConfig::default(), false);
        (
            simulate(&program, &cfg).expect("fused"),
            simulate_reference(&program, &cfg).expect("reference"),
        )
    });
    for (cell, (fused, reference)) in cells.iter().zip(&outcomes) {
        assert_reports_equal(cell, fused, reference);
    }
}

/// The golden-trace workloads with branch tracing enabled: the traces —
/// the predictor's observable behaviour — must match entry for entry.
#[test]
fn fused_engine_matches_reference_traces_on_golden_workloads() {
    let cells = [
        Cell::new(BenchmarkId::Pi, PredictorChoice::TageScL, false, 0),
        Cell::new(BenchmarkId::Bandit, PredictorChoice::Tournament, false, 0),
        Cell::new(BenchmarkId::Pi, PredictorChoice::TageScL, true, 0),
        Cell::new(BenchmarkId::Bandit, PredictorChoice::Tournament, true, 0),
    ];
    let outcomes = run_cells(&cells, Jobs::default(), |cell| {
        let program = cell.workload.build(Scale::Smoke, GOLDEN_SEED).program();
        let cfg = config_for(cell, OooConfig::default(), true);
        (
            simulate(&program, &cfg).expect("fused"),
            simulate_reference(&program, &cfg).expect("reference"),
        )
    });
    for (cell, (fused, reference)) in cells.iter().zip(&outcomes) {
        assert!(
            !fused.branch_trace.is_empty(),
            "trace must be populated for {cell:?}"
        );
        assert_reports_equal(cell, fused, reference);
    }
}

/// The wide (8-wide / 256-ROB) core, the static predictors, and the
/// Figure 9 filter mode — the remaining machine axes.
#[test]
fn fused_engine_matches_reference_on_remaining_machine_axes() {
    let program = BenchmarkId::Photon
        .build(Scale::Smoke, workload_seed(BenchmarkId::Photon, 1))
        .program();
    for predictor in [
        PredictorChoice::Tournament,
        PredictorChoice::TageScL,
        PredictorChoice::StaticTaken,
        PredictorChoice::StaticNotTaken,
    ] {
        for (core, filter, pbs) in [
            (OooConfig::wide(), false, true),
            (OooConfig::default(), true, false),
            (OooConfig::wide(), true, true),
        ] {
            let mut cfg = SimConfig {
                core,
                predictor,
                collect_branch_trace: true,
                ..SimConfig::default()
            };
            cfg.filter_prob_from_predictor = filter;
            if pbs {
                cfg.pbs = Some(PbsConfig::default());
            }
            let fused = simulate(&program, &cfg).expect("fused");
            let reference = simulate_reference(&program, &cfg).expect("reference");
            assert_eq!(
                fused, reference,
                "report drift: {predictor:?}, filter={filter}, pbs={pbs}"
            );
        }
    }
}

/// Both engines must also agree on *errors*: the instruction budget
/// trips at the same dynamic instruction.
#[test]
fn fused_engine_matches_reference_on_instruction_limits() {
    let program = BenchmarkId::Pi.build(Scale::Smoke, GOLDEN_SEED).program();
    for max_insts in [1, 2, 64, 65, 1000] {
        let cfg = SimConfig {
            max_insts,
            ..SimConfig::default()
        };
        let fused = simulate(&program, &cfg);
        let reference = simulate_reference(&program, &cfg);
        assert_eq!(fused, reference, "limit {max_insts}");
        assert!(fused.is_err(), "limit {max_insts} must trip");
    }
}
