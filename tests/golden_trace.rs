//! Golden-trace regression tests: the per-branch (pc, predicted,
//! actual) stream of a small fixed-seed workload is serialized under
//! `tests/golden/` and replayed here, so a predictor or pipeline
//! refactor that changes *any* prediction — even one that leaves the
//! aggregate MPKI looking plausible — fails loudly instead of silently
//! drifting the paper's figures.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! PROBRANCH_REGEN_GOLDEN=1 cargo test --test golden_trace
//! git diff tests/golden/   # review the drift before committing it
//! ```

use probranch::pipeline::{simulate, BranchTraceEntry, PredictorChoice, SimConfig};
use probranch::workloads::{BenchmarkId, Scale};

/// Fixed workload seed: golden files pin one exact dynamic stream.
const GOLDEN_SEED: u64 = 0xB5EED;

/// Verbatim trace prefix kept in the golden file; the rest of the run
/// is covered by the trailing count + FNV hash.
const PREFIX: usize = 512;

fn trace_of(id: BenchmarkId, predictor: PredictorChoice) -> Vec<BranchTraceEntry> {
    let bench = id.build(Scale::Smoke, GOLDEN_SEED);
    let cfg = SimConfig {
        predictor,
        collect_branch_trace: true,
        ..SimConfig::default()
    };
    let report = simulate(&bench.program(), &cfg).expect("golden workload simulates");
    assert!(
        report.branch_trace.len() > PREFIX,
        "{id:?}: trace too short ({}) to be a meaningful golden",
        report.branch_trace.len()
    );
    report.branch_trace
}

/// FNV-1a over the full trace, so drift beyond the verbatim prefix is
/// still caught.
fn fnv_hash(trace: &[BranchTraceEntry]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for e in trace {
        eat(e.pc as u64);
        eat(((e.predicted as u64) << 2) | ((e.taken as u64) << 1) | e.is_prob as u64);
    }
    h
}

fn render(id: BenchmarkId, predictor: PredictorChoice, trace: &[BranchTraceEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# golden branch trace: {id:?} / {} / Scale::Smoke / seed {GOLDEN_SEED:#x}\n",
        predictor.name(),
    ));
    out.push_str(&format!(
        "# columns: pc predicted taken is_prob (first {PREFIX} predictor-consulted branches)\n"
    ));
    for e in &trace[..PREFIX] {
        out.push_str(&format!(
            "{} {} {} {}\n",
            e.pc, e.predicted as u8, e.taken as u8, e.is_prob as u8
        ));
    }
    out.push_str(&format!(
        "total {} fnv {:016x}\n",
        trace.len(),
        fnv_hash(trace)
    ));
    out
}

fn check_golden(file: &str, id: BenchmarkId, predictor: PredictorChoice) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file);
    let actual = render(id, predictor, &trace_of(id, predictor));
    if std::env::var("PROBRANCH_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with PROBRANCH_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line instead of dumping 500 of them.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
        let show = |s: &str| s.lines().nth(line).unwrap_or("<eof>").to_string();
        panic!(
            "golden trace drift in {} at line {}:\n  expected: {}\n  actual:   {}\n\
             If the change is intentional, regenerate with PROBRANCH_REGEN_GOLDEN=1 \
             and review the diff.",
            path.display(),
            line + 1,
            show(&expected),
            show(&actual),
        );
    }
}

#[test]
fn pi_tage_trace_matches_golden() {
    check_golden(
        "pi_tage_smoke.trace",
        BenchmarkId::Pi,
        PredictorChoice::TageScL,
    );
}

#[test]
fn bandit_tournament_trace_matches_golden() {
    check_golden(
        "bandit_tournament_smoke.trace",
        BenchmarkId::Bandit,
        PredictorChoice::Tournament,
    );
}

#[test]
fn golden_trace_is_reproducible_in_process() {
    // The precondition for golden files making sense at all.
    let a = trace_of(BenchmarkId::Pi, PredictorChoice::TageScL);
    let b = trace_of(BenchmarkId::Pi, PredictorChoice::TageScL);
    assert_eq!(a, b);
    assert_eq!(fnv_hash(&a), fnv_hash(&b));
}

#[test]
fn trace_collection_is_off_by_default() {
    let bench = BenchmarkId::Pi.build(Scale::Smoke, GOLDEN_SEED);
    let report = simulate(&bench.program(), &SimConfig::default()).expect("sim");
    assert!(report.branch_trace.is_empty());
}
