//! Integration tests over the PBS design space: the knobs the paper
//! fixes at design time (Section V-C2), swept to verify the mechanism
//! degrades gracefully rather than breaking.

use probranch::prelude::*;

fn run_with(pbs: PbsConfig, bench: &dyn Benchmark) -> probranch::pipeline::SimReport {
    let cfg = SimConfig {
        pbs: Some(pbs),
        ..SimConfig::default()
    };
    simulate(&bench.program(), &cfg).unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
}

#[test]
fn single_btb_entry_still_works_for_single_branch_workloads() {
    let b = Pi::new(Scale::Smoke, 3);
    let r = run_with(
        PbsConfig {
            num_branches: 1,
            ..PbsConfig::default()
        },
        &b,
    );
    let stats = r.pbs.unwrap();
    assert!(stats.directed > stats.bypassed, "{stats:?}");
}

#[test]
fn single_btb_entry_thrashes_on_multi_branch_workloads() {
    // Greeks has three probabilistic branches in one loop; one entry
    // forces constant eviction, but execution stays correct.
    let b = Greeks::new(Scale::Smoke, 3);
    let full = run_with(PbsConfig::default(), &b);
    let tiny = run_with(
        PbsConfig {
            num_branches: 1,
            ..PbsConfig::default()
        },
        &b,
    );
    let s_full = full.pbs.unwrap();
    let s_tiny = tiny.pbs.unwrap();
    assert!(
        s_tiny.directed < s_full.directed,
        "thrashing must reduce coverage: {s_tiny:?} vs {s_full:?}"
    );
    // Outputs remain positive payoff sums either way.
    assert!(f64::from_bits(tiny.output(0)[1]) > 0.0);
}

#[test]
fn deeper_in_flight_lengthens_bootstrap_but_still_directs() {
    let b = McInteg::new(Scale::Smoke, 3);
    let shallow = run_with(
        PbsConfig {
            in_flight: 1,
            ..PbsConfig::default()
        },
        &b,
    );
    let deep = run_with(
        PbsConfig {
            in_flight: 16,
            ..PbsConfig::default()
        },
        &b,
    );
    let s_shallow = shallow.pbs.unwrap();
    let s_deep = deep.pbs.unwrap();
    assert!(s_deep.bootstrap >= s_shallow.bootstrap);
    assert!(s_deep.directed > 0 && s_shallow.directed > 0);
}

#[test]
fn context_tracking_off_is_functional_on_flat_loops() {
    let b = Pi::new(Scale::Smoke, 3);
    let r = run_with(
        PbsConfig {
            context_tracking: false,
            ..PbsConfig::default()
        },
        &b,
    );
    let stats = r.pbs.unwrap();
    assert_eq!(stats.context_flushes, 0);
    assert!(stats.directed > 0);
}

#[test]
fn all_design_points_preserve_output_statistics() {
    // Whatever the configuration, the algorithmic result must stay in
    // the statistical ballpark of the baseline.
    let b = Pi::new(Scale::Bench, 3);
    let base = run_functional(&b.program(), None, 1_000_000_000).unwrap();
    let base_hits = base.output(0)[0] as f64;
    for cfg in [
        PbsConfig::default(),
        PbsConfig {
            num_branches: 1,
            ..PbsConfig::default()
        },
        PbsConfig {
            in_flight: 1,
            ..PbsConfig::default()
        },
        PbsConfig {
            in_flight: 16,
            ..PbsConfig::default()
        },
        PbsConfig {
            context_tracking: false,
            ..PbsConfig::default()
        },
        PbsConfig {
            values_per_branch: 1,
            ..PbsConfig::default()
        },
    ] {
        let r = run_functional(&b.program(), Some(cfg.clone()), 1_000_000_000).unwrap();
        let hits = r.output(0)[0] as f64;
        assert!(
            (base_hits - hits).abs() / base_hits < 0.02,
            "{cfg:?}: {base_hits} vs {hits}"
        );
    }
}

#[test]
fn category2_workload_needs_swap_capacity() {
    // Swaptions carries one probabilistic value per branch; a
    // zero-swap-capacity... the minimum is 1 value (the PROB_CMP
    // register), which suffices here.
    let b = Swaptions::new(Scale::Smoke, 3);
    let r = run_with(
        PbsConfig {
            values_per_branch: 1,
            ..PbsConfig::default()
        },
        &b,
    );
    assert!(r.pbs.unwrap().directed > 0);
}

#[test]
fn every_workload_disassembles_and_reassembles() {
    for b in all_benchmarks(Scale::Smoke, 3) {
        let p = b.program();
        let text = p.to_string();
        let back = probranch::isa::parse_asm(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        assert_eq!(p, back, "{}", b.name());
    }
}

#[test]
fn every_workload_survives_binary_encoding() {
    for b in all_benchmarks(Scale::Smoke, 3) {
        let p = b.program();
        let image = probranch::isa::encode(&p);
        let back = probranch::isa::Program::new(probranch::isa::decode(&image).unwrap()).unwrap();
        assert_eq!(p, back, "{}", b.name());
    }
}

#[test]
fn seeds_change_outputs_but_not_structure() {
    for seed in [1u64, 2, 3] {
        let a = Pi::new(Scale::Smoke, seed);
        let b = Pi::new(Scale::Smoke, seed + 10);
        assert_ne!(a.reference_hits(), b.reference_hits());
        assert_eq!(a.program().len(), b.program().len());
    }
}
