//! Advanced example: authoring a custom probabilistic workload with
//! *regular* branches, letting the compiler crate's taint analysis mark
//! the probabilistic ones automatically (paper Section V-B), and
//! verifying PBS safety — the full software-support flow.
//!
//! ```text
//! cargo run --example custom_workload --release
//! ```

use probranch::compiler::{safety, taint};
use probranch::prelude::*;

/// A reservoir-sampling-flavoured kernel written with ordinary
/// `cmp`/`jf` branches: each element replaces the reservoir slot with
/// probability threshold.
fn build_unmarked() -> Result<probranch::isa::Program, Box<dyn std::error::Error>> {
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let keep = b.label("keep");
    // Inline xorshift64* (the taint analysis recognizes this pattern).
    b.li(Reg::R24, 0xfeed_f00d_dead_beefu64 as i64);
    b.li(Reg::R25, 0x2545_F491_4F6C_DD1Du64 as i64);
    b.lif(Reg::R26, 1.0 / (1u64 << 53) as f64);
    b.li(Reg::R1, 0); // replacements
    b.li(Reg::R2, 0); // i
    b.lif(Reg::R10, 0.25); // replacement probability (run constant)
    b.bind(top);
    b.shr(Reg::R27, Reg::R24, 12)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.shl(Reg::R27, Reg::R24, 25)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.shr(Reg::R27, Reg::R24, 27)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.mul(Reg::R3, Reg::R24, Reg::R25);
    b.shr(Reg::R3, Reg::R3, 11);
    b.itof(Reg::R3, Reg::R3);
    b.fmul(Reg::R3, Reg::R3, Reg::R26);
    // An ordinary compare-and-jump — nothing probabilistic marked yet.
    b.fcmp(CmpOp::Ge, Reg::R3, Reg::R10);
    b.jf(keep);
    b.add(Reg::R1, Reg::R1, 1); // replace the reservoir slot
    b.bind(keep);
    b.add(Reg::R2, Reg::R2, 1);
    b.br(CmpOp::Lt, Reg::R2, 40_000, top);
    b.out(Reg::R1, 0);
    b.halt();
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unmarked = build_unmarked()?;
    println!(
        "unmarked program: {} probabilistic branches",
        unmarked.branch_counts().0
    );

    // 1. Find the random-number generators.
    let roots = taint::detect_xorshift_roots(&unmarked);
    println!(
        "detected {} inline RNG root(s) at pcs {roots:?}",
        roots.len()
    );

    // 2. Propagate taint and mark controlled branches.
    let t = taint::propagate(&unmarked, &roots);
    let candidates = taint::find_candidates(&unmarked, &t);
    println!(
        "taint analysis found {} candidate branch(es)",
        candidates.len()
    );
    let marked = taint::mark_probabilistic(&unmarked, &t);
    println!(
        "marked program:   {} probabilistic branches",
        marked.branch_counts().0
    );

    // 3. Static safety: the threshold must be constant in context.
    for (pc, verdict) in safety::check_program(&marked) {
        println!("safety @ pc {pc}: {verdict:?}");
    }
    assert!(safety::all_safe(&marked));

    // 4. Compare all three machines.
    println!();
    println!(
        "{:<34} {:>8} {:>8} {:>12}",
        "machine", "MPKI", "IPC", "replacements"
    );
    for (label, program, pbs) in [
        ("legacy (unmarked binary)", &unmarked, false),
        ("PBS hardware, unmarked binary", &unmarked, true),
        ("PBS hardware, auto-marked binary", &marked, true),
    ] {
        let mut cfg = SimConfig::default();
        if pbs {
            cfg = cfg.with_pbs();
        }
        let r = simulate(program, &cfg)?;
        println!(
            "{:<34} {:>8.3} {:>8.3} {:>12}",
            label,
            r.timing.mpki(),
            r.timing.ipc(),
            r.output(0)[0]
        );
    }
    println!();
    println!("note: the middle row shows backward compatibility — PBS hardware");
    println!("runs unmarked binaries exactly like a legacy machine.");
    Ok(())
}
