//! Domain example: evolutionary optimization (the paper's Genetic
//! workload and §VII-D accuracy experiment). Runs the genetic algorithm
//! over several seeds with and without PBS and compares the success
//! rates with 95% confidence intervals, exactly like the paper.
//!
//! ```text
//! cargo run --example genetic_search --release
//! ```

use probranch::prelude::*;
use probranch::workloads::accuracy::SuccessRate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 24u64;
    let mut ok_base = 0u64;
    let mut ok_pbs = 0u64;

    println!("running {trials} genetic-algorithm trials (seed-varied)...");
    for seed in 0..trials {
        let g = Genetic::new(Scale::Bench, 1000 + seed);
        let program = g.program();
        let base = run_functional(&program, None, 1_000_000_000)?;
        let pbs = run_functional(&program, Some(PbsConfig::default()), 1_000_000_000)?;
        ok_base += base.output(0)[0];
        ok_pbs += pbs.output(0)[0];
        println!(
            "  seed {seed:>2}: baseline {} in {} gens | PBS {} in {} gens",
            if base.output(0)[0] == 1 {
                "hit "
            } else {
                "miss"
            },
            base.output(0)[1],
            if pbs.output(0)[0] == 1 {
                "hit "
            } else {
                "miss"
            },
            pbs.output(0)[1],
        );
    }

    let a = SuccessRate::from_counts(ok_base, trials);
    let b = SuccessRate::from_counts(ok_pbs, trials);
    println!();
    println!(
        "success rate, baseline: {:.3} [{:.3}, {:.3}]",
        a.rate, a.lo, a.hi
    );
    println!(
        "success rate, PBS:      {:.3} [{:.3}, {:.3}]",
        b.rate, b.lo, b.hi
    );
    if a.overlaps(&b) {
        println!("confidence intervals overlap: no statistical evidence that PBS differs");
    } else {
        println!("WARNING: intervals do not overlap — PBS altered the algorithm");
    }

    // One timing run to show the branch-predictor story.
    let g = Genetic::new(Scale::Bench, 1000);
    let base = simulate(&g.program(), &SimConfig::default())?;
    let pbs = simulate(&g.program(), &SimConfig::default().with_pbs())?;
    println!();
    println!(
        "MPKI {:.2} -> {:.2}, IPC {:.2} -> {:.2} with PBS",
        base.timing.mpki(),
        pbs.timing.mpki(),
        base.timing.ipc(),
        pbs.timing.ipc()
    );
    Ok(())
}
