//! Quickstart: write a tiny probabilistic kernel with the builder DSL,
//! run it on the cycle simulator with and without PBS, and compare.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use probranch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Monte-Carlo coin-flip kernel: draw a uniform value with an
    // inline xorshift64* generator, compare it against 0.5 with the
    // paper's PROB_CMP/PROB_JMP pair, and count the "heads".
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let skip = b.label("skip");

    // RNG state and constants.
    b.li(Reg::R24, 0x1234_5678_9abc_def1u64 as i64);
    b.li(Reg::R25, 0x2545_F491_4F6C_DD1Du64 as i64);
    b.lif(Reg::R26, 1.0 / (1u64 << 53) as f64);
    b.li(Reg::R1, 0); // heads
    b.li(Reg::R2, 0); // i
    b.lif(Reg::R10, 0.5); // threshold (constant in context: PBS-safe)

    b.bind(top);
    // xorshift64* + [0,1) conversion — random numbers cost real
    // simulated instructions.
    b.shr(Reg::R27, Reg::R24, 12)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.shl(Reg::R27, Reg::R24, 25)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.shr(Reg::R27, Reg::R24, 27)
        .xor(Reg::R24, Reg::R24, Reg::R27);
    b.mul(Reg::R3, Reg::R24, Reg::R25);
    b.shr(Reg::R3, Reg::R3, 11);
    b.itof(Reg::R3, Reg::R3);
    b.fmul(Reg::R3, Reg::R3, Reg::R26);
    // The probabilistic branch.
    b.prob_fcmp(CmpOp::Ge, Reg::R3, Reg::R10);
    b.prob_jmp(None, skip);
    b.add(Reg::R1, Reg::R1, 1);
    b.bind(skip);
    b.add(Reg::R2, Reg::R2, 1);
    b.br(CmpOp::Lt, Reg::R2, 50_000, top);
    b.out(Reg::R1, 0);
    b.halt();
    let program = b.build()?;

    // Baseline: the probabilistic branch is ~50/50 — the TAGE-SC-L
    // predictor cannot learn it.
    let base = simulate(&program, &SimConfig::default())?;
    // PBS: fetch follows the recorded outcome of the previous execution.
    let pbs = simulate(&program, &SimConfig::default().with_pbs())?;

    println!("heads (baseline): {}", base.output(0)[0]);
    println!("heads (PBS):      {}", pbs.output(0)[0]);
    println!();
    println!("                 baseline        PBS");
    println!(
        "MPKI        {:>10.3} {:>10.3}",
        base.timing.mpki(),
        pbs.timing.mpki()
    );
    println!(
        "IPC         {:>10.3} {:>10.3}",
        base.timing.ipc(),
        pbs.timing.ipc()
    );
    println!(
        "cycles      {:>10} {:>10}",
        base.timing.cycles, pbs.timing.cycles
    );
    let stats = pbs.pbs.expect("PBS attached");
    println!();
    println!(
        "PBS events: {} directed, {} bootstrap, {} bypassed",
        stats.directed, stats.bootstrap, stats.bypassed
    );
    println!(
        "speedup: {:.2}x",
        base.timing.cycles as f64 / pbs.timing.cycles as f64
    );
    Ok(())
}
