//! Domain example: reinforcement learning with an epsilon-greedy
//! multi-armed bandit (the paper's Bandit workload). The probabilistic
//! explore/exploit branch sits inside a function called from the pull
//! loop — the structure neither predication nor CFD can handle
//! (Table I) while PBS's calling-context support covers it.
//!
//! ```text
//! cargo run --example epsilon_greedy_bandit --release
//! ```

use probranch::compiler::{cfd, predication};
use probranch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bandit = Bandit::new(Scale::Bench, 11);
    let program = bandit.program();

    // Static story first: what can the baseline techniques do here?
    println!("baseline applicability for the explore/exploit branch:");
    for (pc, verdict) in predication::analyze_program(&program) {
        match verdict {
            Ok(()) => println!("  predication @ pc {pc}: applicable"),
            Err(e) => println!("  predication @ pc {pc}: NOT applicable — {e}"),
        }
    }
    for (pc, verdict) in cfd::analyze_program(&program) {
        match verdict {
            Ok(()) => println!("  CFD         @ pc {pc}: applicable"),
            Err(e) => println!("  CFD         @ pc {pc}: NOT applicable — {e}"),
        }
    }
    println!();

    // Dynamic story: PBS handles it via the Context-Table's Function-PC.
    let base = simulate(&program, &SimConfig::default())?;
    let pbs = simulate(&program, &SimConfig::default().with_pbs())?;

    let (reward_base, best_base) = (base.output(0)[0], base.output(0)[1]);
    let (reward_pbs, best_pbs) = (pbs.output(0)[0], pbs.output(0)[1]);
    println!("total reward:   baseline {reward_base}, PBS {reward_pbs}");
    println!("best-arm pulls: baseline {best_base}, PBS {best_pbs}");
    println!(
        "average reward: baseline {:.3}, PBS {:.3} (best arm pays {:.2})",
        reward_base as f64 / bandit.pulls as f64,
        reward_pbs as f64 / bandit.pulls as f64,
        Bandit::arm_probability(7),
    );
    println!();
    let stats = pbs.pbs.expect("PBS attached");
    println!(
        "PBS: {} directed / {} bootstrap / {} bypassed ({} context flushes)",
        stats.directed, stats.bootstrap, stats.bypassed, stats.context_flushes
    );
    println!(
        "prob-branch mispredicts: baseline {}, PBS {}",
        base.timing.mispredicts_prob, pbs.timing.mispredicts_prob
    );
    println!(
        "MPKI: baseline {:.3}, PBS {:.3}",
        base.timing.mpki(),
        pbs.timing.mpki()
    );
    Ok(())
}
