//! Domain example: financial Monte-Carlo pricing (the paper's DOP and
//! Greeks workloads). Compares branch-predictor behaviour and output
//! accuracy with and without PBS across both predictors.
//!
//! ```text
//! cargo run --example monte_carlo_pricing --release
//! ```

use probranch::prelude::*;

fn run(name: &str, program: &probranch::isa::Program) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {name} ==");
    println!(
        "{:<24} {:>8} {:>8} {:>10}",
        "configuration", "MPKI", "IPC", "cycles"
    );
    let mut baseline_cycles = 0u64;
    for (label, predictor, pbs) in [
        ("tournament", PredictorChoice::Tournament, false),
        ("tage-sc-l", PredictorChoice::TageScL, false),
        ("tournament + PBS", PredictorChoice::Tournament, true),
        ("tage-sc-l + PBS", PredictorChoice::TageScL, true),
    ] {
        let mut cfg = SimConfig::default().predictor(predictor);
        if pbs {
            cfg = cfg.with_pbs();
        }
        let r = simulate(program, &cfg)?;
        if label == "tournament" {
            baseline_cycles = r.timing.cycles;
        }
        println!(
            "{:<24} {:>8.3} {:>8.3} {:>10} ({:.2}x)",
            label,
            r.timing.mpki(),
            r.timing.ipc(),
            r.timing.cycles,
            baseline_cycles as f64 / r.timing.cycles as f64
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dop = Dop::new(Scale::Bench, 7);
    run("DOP — digital option pricing (Category 1)", &dop.program())?;

    // Output accuracy: the paper reports zero relative error for DOP.
    let base = run_functional(&dop.program(), None, 1_000_000_000)?;
    let pbs = run_functional(&dop.program(), Some(PbsConfig::default()), 1_000_000_000)?;
    println!(
        "DOP digital-call price: baseline {:.5}, PBS {:.5}",
        base.output_f64(1)[0],
        pbs.output_f64(1)[0]
    );
    println!();

    let greeks = Greeks::new(Scale::Bench, 7);
    run(
        "Greeks — option sensitivities (Category 2, value swap)",
        &greeks.program(),
    )?;
    let (price, delta, gamma) = greeks.reference_greeks();
    println!("reference greeks: price {price:.3}, delta {delta:.3}, gamma {gamma:.4}");
    Ok(())
}
